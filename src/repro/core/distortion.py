"""Statistical distortion — Definition 1 of the paper.

``S(C, D) = d(D, DC)``: the distributional distance between a data set and
its cleaned counterpart. Distortion is measured **against the dirty data**
("we measure distortion against the original, but calibrate cleanliness with
respect to the ideal", Section 1.1), pooling every time instant as one
``v``-tuple (Section 6.1) on the analysis scale of the experiment.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.data.block import SampleBlock
from repro.data.dataset import StreamDataset
from repro.distance.base import Distance
from repro.distance.emd import EarthMoverDistance
from repro.errors import DistanceError
from repro.glitches.detectors import ScaleTransform

__all__ = [
    "statistical_distortion",
    "statistical_distortion_batch",
    "StreamingDistortion",
    "statistical_distortion_stream",
    "slab_streams",
]

#: Either layout of one replication sample.
Sample = Union[StreamDataset, SampleBlock]


def _pooled_analysis(
    sample: Sample,
    transform: Optional[ScaleTransform],
    keep_partial: bool = False,
) -> np.ndarray:
    """Analysis-scale rows of a data set or sample block.

    The block branch transforms the whole ``(n, T, v)`` tensor in place of
    per-series passes and reads the pooled matrix straight off the block
    columns; row order and every cell match the per-series pooling, so the
    downstream distances are bitwise-identical across layouts. Rows with a
    NaN are dropped by default (the complete-case semantics multivariate
    binning needs); ``keep_partial`` keeps them for consumers with
    per-attribute NaN handling (the ECDF-sketch distances).
    """
    if isinstance(sample, SampleBlock):
        values = (
            transform.forward_values(sample.values, sample.attributes)
            if transform is not None
            else sample.values
        )
        flat = values.reshape(-1, values.shape[-1])
        if keep_partial:
            return flat
        return flat[~np.isnan(flat).any(axis=1)]
    scaled = transform.apply_dataset(sample) if transform is not None else sample
    return scaled.pooled(dropna="none" if keep_partial else "any")


def statistical_distortion(
    dirty: Sample,
    treated: Sample,
    distance: Optional[Distance] = None,
    transform: Optional[ScaleTransform] = None,
) -> float:
    """Distance between the pooled empirical distributions of two data sets.

    Parameters
    ----------
    dirty:
        The untreated data set ``D`` (the reference distribution).
    treated:
        The cleaned data set ``DC``.
    distance:
        Any :class:`~repro.distance.base.Distance`; defaults to the paper's
        EMD.
    transform:
        Optional analysis-scale transform applied to both sides first (the
        log-attr1 experimental factor). Rows with missing values carry no
        mass and are dropped by the distance.
    """
    return statistical_distortion_batch(
        dirty, [treated], distance=distance, transform=transform
    )[0]


def statistical_distortion_batch(
    dirty: Sample,
    treated_seq: Sequence[Sample],
    distance: Optional[Distance] = None,
    transform: Optional[ScaleTransform] = None,
    pooled_reference: Optional[np.ndarray] = None,
) -> list[float]:
    """Distortion of many treated data sets against one dirty reference.

    The batched form of :func:`statistical_distortion` used by the
    experiment framework to score a whole strategy panel per replication:
    the dirty side is transformed and pooled exactly once, and distances
    that implement a cached ``pairwise`` path (the default EMD does) bin
    the reference once on a grid shared by all candidates instead of
    re-binning it per strategy. Returns one distortion per treated data
    set, in order. Either side may be a columnar
    :class:`~repro.data.block.SampleBlock` — its pooled rows are read
    straight off the block columns, bitwise-identical to the per-series
    pooling.

    **Shared-support semantics** (multivariate EMD): the grid spans the
    pooled union of the dirty sample and *every* treated candidate — the
    paper's "bins covering this support". All values within one panel are
    therefore computed on identical bins and are directly comparable to
    each other, but a candidate with an extreme range stretches the grid
    for the whole panel, so an individual value can shift slightly (within
    EMD's binning-insensitivity envelope) when the panel composition
    changes. For a panel-independent per-pair value, call
    :func:`statistical_distortion`, which covers only that pair's support.
    The exact univariate path bins nothing and is panel-independent either
    way.

    **NaN semantics** follow the distance's ``complete_case`` declaration:
    complete-case distances (the default — multivariate binning needs whole
    rows) see NaN-bearing rows dropped here; distances with per-attribute
    NaN handling (KS) receive the rows whole, so a cleaner that blanks one
    column still gets scored on the remaining attributes exactly as the
    distance's own documentation promises.

    *pooled_reference* short-circuits the dirty side: pass the array a prior
    call to ``_pooled_analysis(dirty, transform, keep_partial=...)`` (with
    the **same** transform and the distance's own ``complete_case``
    semantics) produced, and the reference is not re-pooled. The sweep
    planner's shared-frame evaluation uses this to pool each replication's
    dirty sample once across a whole group of strategy panels — the arrays
    are identical, so the distances are too.
    """
    distance = distance or EarthMoverDistance()
    keep_partial = not getattr(distance, "complete_case", True)
    p = (
        pooled_reference
        if pooled_reference is not None
        else _pooled_analysis(dirty, transform, keep_partial=keep_partial)
    )
    qs = [
        _pooled_analysis(t, transform, keep_partial=keep_partial)
        for t in treated_seq
    ]
    if p.shape[0] == 0 or any(q.shape[0] == 0 for q in qs):
        raise DistanceError("no complete records to compare")
    return [float(d) for d in distance.pairwise(p, qs)]


def slab_streams(
    reference: np.ndarray,
    candidates: Sequence[np.ndarray],
    reference_width: int,
    candidate_width: Optional[int] = None,
) -> tuple[list[np.ndarray], "list[tuple[np.ndarray, list[np.ndarray]]]"]:
    """Cut pooled arrays into the two aligned streams
    :func:`statistical_distortion_stream` consumes.

    Convenience for call sites that hold in-memory rows (benches, tests,
    small jobs): the reference is sliced at ``reference_width``, every
    candidate at ``candidate_width`` (defaulting to the reference width),
    and shorter streams are padded with **empty** slabs — empty slabs are
    accumulation no-ops, so nothing is silently truncated when the slab
    counts differ. Returns ``(reference_slabs, paired_slabs)``.
    """
    reference = np.asarray(reference, dtype=float)
    candidates = [np.asarray(q, dtype=float) for q in candidates]
    if reference_width < 1 or (candidate_width is not None and candidate_width < 1):
        raise DistanceError("slab widths must be positive")
    cand_width = candidate_width or reference_width
    ref_slabs = [
        reference[a : a + reference_width]
        for a in range(0, len(reference), reference_width)
    ] or [reference[:0]]
    cand_slabs = [
        [q[a : a + cand_width] for a in range(0, len(q), cand_width)] or [q[:0]]
        for q in candidates
    ]
    n = max(len(ref_slabs), *(len(s) for s in cand_slabs)) if cand_slabs else len(ref_slabs)
    ref_slabs = ref_slabs + [reference[:0]] * (n - len(ref_slabs))
    cand_slabs = [
        s + [q[:0]] * (n - len(s)) for q, s in zip(candidates, cand_slabs)
    ]
    paired = [
        (ref_slabs[i], [s[i] for s in cand_slabs]) for i in range(n)
    ]
    return ref_slabs, paired


class StreamingDistortion:
    """One-pass, out-of-core distortion of many candidates against one
    reference.

    The pooled-sample form above materialises every side as an ``(N, v)``
    array; at population scale that is exactly the "store all the data" the
    paper's stream setting rules out. This driver never pools anything — it
    extracts analysis-scale rows from whatever sample layout the caller
    holds (data sets, sample blocks, raw arrays) and hands them to the
    engine-agnostic :class:`~repro.core.incremental.DistortionFold`, which
    owns the accumulation:

    1. ``observe_reference`` folds reference slabs into a tiny *sketch* —
       running sum/sum-of-squares for the standardisation frame, exact
       running min/max for the support bounds, and (for quantile-binning
       distances) one exact per-dimension
       :class:`~repro.stats.ecdf.EcdfSketch` for the edge order statistics;
    2. ``freeze_grid`` fixes the accumulation mode the distance asked for
       (:meth:`~repro.distance.base.Distance.stream_mode`): **histogram**
       distances (multivariate EMD, KL, JS — uniform *or* quantile edges)
       get a shared :class:`~repro.distance.histogram.HistogramGrid`;
       **ECDF** distances (KS, exact 1-D EMD) get per-attribute
       :class:`~repro.stats.ecdf.EcdfSketch` panels and need no grid;
    3. ``observe`` folds ``(reference_slab, candidate_slabs)`` pairs into
       the mergeable summaries — the single pass over the candidate data;
    4. ``finalize`` hands the accumulated summaries to the distance —
       one residual-transport solve batched across the panel for EMD,
       smoothed bin-mass divergences for KL/JS, sketch CDF gaps for KS.

    Count folding on a frozen grid and exact-mode sketch merging are both
    bitwise-exact (the property tests pin this down). What separates a
    streamed value from its pooled counterpart, per mode:

    * **histogram**: the frame is a streamed moment estimate (ulp-level
      accumulation error), and the grid spans the *reference* support only —
      the pooled path's grid spans the union of reference and candidates,
      so candidate mass outside the reference range clips into the boundary
      bins here. Quantile edges are placed by a bitwise replay of the
      pooled ``np.quantile`` edge arithmetic over the streamed reference
      (exact edge sketches by default; ``sketch_size`` trades exactness for
      bounded memory), so they carry no extra streaming error — only the
      same reference-support semantics. When candidates can move mass
      beyond the reference range (imputation past the observed maximum,
      say), pass ``support_margin`` to :meth:`freeze_grid` to buy headroom
      (uniform edges only — quantile edges follow the reference mass);
      within-support streams agree with the pooled path exactly up to the
      frame ulps — bitwise with ``standardize=False``.
    * **ecdf**: exact-mode sketches (``sketch_size=None``) reproduce the
      pooled statistic bitwise for scale-free distances (KS) and for
      unstandardised 1-D EMD; a standardising 1-D EMD divides by the
      streamed frame scale (ulp-level); setting ``sketch_size`` bounds
      memory at the sketch's documented rank-error tolerance. NaN handling
      is per attribute (rows are *not* complete-case filtered; each
      sketch drops its own column's non-finite values), matching the
      sketch distances' own pooled ``pairwise`` semantics.

    Parameters
    ----------
    n_candidates:
        Number of treated candidates scored against the reference.
    distance:
        Any streaming-capable :class:`~repro.distance.base.Distance` —
        one whose :meth:`~repro.distance.base.Distance.stream_mode` is not
        ``None``: the paper's EMD (default), quantile- or uniform-binning
        :class:`~repro.distance.kl.KLDivergence` /
        :class:`~repro.distance.kl.JensenShannonDistance`, or
        :class:`~repro.distance.ks.KolmogorovSmirnovDistance`.
    transform:
        Optional analysis-scale transform applied slab-wise (elementwise, so
        slab application matches whole-population application exactly).
    sketch_size:
        Sketch memory bound, for both ECDF-mode panels and quantile edge
        sketches: ``None`` (default) keeps exact sketches — O(distinct
        values) per attribute; an integer compacts each sketch to that many
        weighted order statistics.
    """

    def __init__(
        self,
        n_candidates: int,
        distance: Optional[Distance] = None,
        transform: Optional[ScaleTransform] = None,
        sketch_size: Optional[int] = None,
    ):
        from repro.core.incremental import DistortionFold

        self.transform = transform
        self._fold = DistortionFold(
            n_candidates, distance=distance, sketch_size=sketch_size
        )

    @property
    def distance(self) -> Distance:
        """The distance the fold accumulates for."""
        return self._fold.distance

    @property
    def n_candidates(self) -> int:
        """Number of treated candidates scored against the reference."""
        return self._fold.n_candidates

    @property
    def sketch_size(self) -> Optional[int]:
        """The sketch memory bound (``None`` = exact)."""
        return self._fold.sketch_size

    # -- pass 1: the reference sketch ------------------------------------------

    def _rows(self, sample, keep_partial: bool = False) -> np.ndarray:
        # ``keep_partial`` preserves NaN-bearing rows for ECDF mode: sketch
        # folding drops non-finite values per attribute, which replays the
        # sketch distances' own pooled per-column NaN semantics (a blanked
        # column must not erase the other attributes' marginals).
        if isinstance(sample, np.ndarray):
            # Raw pooled rows: apply the transform columnwise only if the
            # caller didn't — arrays are taken as already analysis-scale.
            rows = np.asarray(sample, dtype=float)
            if rows.ndim != 2:
                raise DistanceError(f"slab rows must be (N, d), got {rows.shape}")
            if keep_partial:
                return rows
            return rows[~np.isnan(rows).any(axis=1)]
        return _pooled_analysis(sample, self.transform, keep_partial=keep_partial)

    def observe_reference(self, sample: Sample) -> None:
        """Fold one reference slab into the frame/support sketch."""
        if self._fold.mode is not None:
            raise DistanceError("grid already frozen; no more reference slabs")
        self._fold.observe_reference(self._rows(sample))

    def freeze_grid(self, support_margin: float = 0.0) -> None:
        """Fix the accumulation mode from the reference sketch.

        Histogram mode freezes the shared grid; ``support_margin`` widens a
        *uniform* grid's standardised support symmetrically by the given
        fraction of its width — headroom for candidates whose mass moves
        outside the reference range (out-of-range rows otherwise clip into
        the boundary bins, the usual sketch trade). Quantile edges follow
        the reference mass instead and ignore the margin. ECDF mode needs
        no grid; a pure-ECDF distance (no binner, e.g. KS) may even skip
        the reference pre-pass entirely, and ``support_margin`` is
        irrelevant to it.
        """
        self._fold.freeze(support_margin=support_margin)

    @property
    def grid(self):
        """The frozen shared grid (``None`` before :meth:`freeze_grid`,
        and always ``None`` in ECDF mode)."""
        return self._fold.grid

    # -- pass 2: the one pass over candidate slabs ------------------------------

    def observe(self, reference_slab: Sample, candidate_slabs: Sequence[Sample]) -> None:
        """Fold one aligned slab of the reference and every candidate."""
        if self._fold.mode is None:
            self._fold.freeze()
        if len(candidate_slabs) != self.n_candidates:
            raise DistanceError(
                f"expected {self.n_candidates} candidate slabs, "
                f"got {len(candidate_slabs)}"
            )
        keep_partial = self._fold.mode != "histogram"
        self._fold.observe(
            self._rows(reference_slab, keep_partial=keep_partial),
            [self._rows(slab, keep_partial=keep_partial) for slab in candidate_slabs],
        )

    def finalize(self) -> list[float]:
        """Panel distortions from the accumulated summaries.

        Histogram mode hands the frozen-grid histograms to the distance in
        one batched call (for EMD: the residual transport problem solved
        once across the panel); ECDF mode hands the per-attribute sketch
        panels over, with the streamed frame scale for distances that
        standardise.
        """
        return self._fold.finalize()


def statistical_distortion_stream(
    reference_slabs: Iterable[Sample],
    paired_slabs: Iterable[tuple[Sample, Sequence[Sample]]],
    n_candidates: int,
    distance: Optional[Distance] = None,
    transform: Optional[ScaleTransform] = None,
    support_margin: float = 0.0,
    sketch_size: Optional[int] = None,
) -> list[float]:
    """Distortion of ``n_candidates`` treated streams against a reference
    stream, without pooling either side.

    ``reference_slabs`` drives the cheap frame/support sketch pre-pass;
    ``paired_slabs`` yields ``(reference_slab, [candidate_slab, ...])``
    tuples and is consumed exactly once — the single pass over the treated
    data. *distance* is any streaming-capable distance — EMD (default),
    KL/JS (quantile or uniform binning), or KS. ``support_margin`` is
    forwarded to :meth:`StreamingDistortion.freeze_grid` — headroom for
    candidate mass outside the reference support in uniform-grid histogram
    mode; ``sketch_size`` bounds sketch memory. See :class:`StreamingDistortion` for the
    accumulation contract and the per-mode tolerance against the pooled
    path.
    """
    stream = StreamingDistortion(
        n_candidates, distance=distance, transform=transform,
        sketch_size=sketch_size,
    )
    for slab in reference_slabs:
        stream.observe_reference(slab)
    stream.freeze_grid(support_margin=support_margin)
    for reference_slab, candidates in paired_slabs:
        stream.observe(reference_slab, candidates)
    return stream.finalize()
