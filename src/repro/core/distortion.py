"""Statistical distortion — Definition 1 of the paper.

``S(C, D) = d(D, DC)``: the distributional distance between a data set and
its cleaned counterpart. Distortion is measured **against the dirty data**
("we measure distortion against the original, but calibrate cleanliness with
respect to the ideal", Section 1.1), pooling every time instant as one
``v``-tuple (Section 6.1) on the analysis scale of the experiment.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.data.block import SampleBlock
from repro.data.dataset import StreamDataset
from repro.distance.base import Distance
from repro.distance.emd import EarthMoverDistance
from repro.errors import DistanceError
from repro.glitches.detectors import ScaleTransform

__all__ = ["statistical_distortion", "statistical_distortion_batch"]

#: Either layout of one replication sample.
Sample = Union[StreamDataset, SampleBlock]


def _pooled_analysis(sample: Sample, transform: Optional[ScaleTransform]) -> np.ndarray:
    """Complete analysis-scale rows of a data set or sample block.

    The block branch transforms the whole ``(n, T, v)`` tensor in place of
    per-series passes and reads the pooled matrix straight off the block
    columns; row order and every cell match the per-series pooling, so the
    downstream distances are bitwise-identical across layouts.
    """
    if isinstance(sample, SampleBlock):
        values = (
            transform.forward_values(sample.values, sample.attributes)
            if transform is not None
            else sample.values
        )
        flat = values.reshape(-1, values.shape[-1])
        return flat[~np.isnan(flat).any(axis=1)]
    scaled = transform.apply_dataset(sample) if transform is not None else sample
    return scaled.pooled(dropna="any")


def statistical_distortion(
    dirty: Sample,
    treated: Sample,
    distance: Optional[Distance] = None,
    transform: Optional[ScaleTransform] = None,
) -> float:
    """Distance between the pooled empirical distributions of two data sets.

    Parameters
    ----------
    dirty:
        The untreated data set ``D`` (the reference distribution).
    treated:
        The cleaned data set ``DC``.
    distance:
        Any :class:`~repro.distance.base.Distance`; defaults to the paper's
        EMD.
    transform:
        Optional analysis-scale transform applied to both sides first (the
        log-attr1 experimental factor). Rows with missing values carry no
        mass and are dropped by the distance.
    """
    return statistical_distortion_batch(
        dirty, [treated], distance=distance, transform=transform
    )[0]


def statistical_distortion_batch(
    dirty: Sample,
    treated_seq: Sequence[Sample],
    distance: Optional[Distance] = None,
    transform: Optional[ScaleTransform] = None,
) -> list[float]:
    """Distortion of many treated data sets against one dirty reference.

    The batched form of :func:`statistical_distortion` used by the
    experiment framework to score a whole strategy panel per replication:
    the dirty side is transformed and pooled exactly once, and distances
    that implement a cached ``pairwise`` path (the default EMD does) bin
    the reference once on a grid shared by all candidates instead of
    re-binning it per strategy. Returns one distortion per treated data
    set, in order. Either side may be a columnar
    :class:`~repro.data.block.SampleBlock` — its pooled rows are read
    straight off the block columns, bitwise-identical to the per-series
    pooling.

    **Shared-support semantics** (multivariate EMD): the grid spans the
    pooled union of the dirty sample and *every* treated candidate — the
    paper's "bins covering this support". All values within one panel are
    therefore computed on identical bins and are directly comparable to
    each other, but a candidate with an extreme range stretches the grid
    for the whole panel, so an individual value can shift slightly (within
    EMD's binning-insensitivity envelope) when the panel composition
    changes. For a panel-independent per-pair value, call
    :func:`statistical_distortion`, which covers only that pair's support.
    The exact univariate path bins nothing and is panel-independent either
    way.
    """
    distance = distance or EarthMoverDistance()
    p = _pooled_analysis(dirty, transform)
    qs = [_pooled_analysis(t, transform) for t in treated_seq]
    if p.shape[0] == 0 or any(q.shape[0] == 0 for q in qs):
        raise DistanceError("no complete records to compare")
    return [float(d) for d in distance.pairwise(p, qs)]
