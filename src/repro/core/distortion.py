"""Statistical distortion — Definition 1 of the paper.

``S(C, D) = d(D, DC)``: the distributional distance between a data set and
its cleaned counterpart. Distortion is measured **against the dirty data**
("we measure distortion against the original, but calibrate cleanliness with
respect to the ideal", Section 1.1), pooling every time instant as one
``v``-tuple (Section 6.1) on the analysis scale of the experiment.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.data.block import SampleBlock
from repro.data.dataset import StreamDataset
from repro.distance.base import Distance
from repro.distance.emd import EarthMoverDistance, emd_between_histograms_batch
from repro.errors import DistanceError
from repro.glitches.detectors import ScaleTransform

__all__ = [
    "statistical_distortion",
    "statistical_distortion_batch",
    "StreamingDistortion",
    "statistical_distortion_stream",
]

#: Either layout of one replication sample.
Sample = Union[StreamDataset, SampleBlock]


def _pooled_analysis(sample: Sample, transform: Optional[ScaleTransform]) -> np.ndarray:
    """Complete analysis-scale rows of a data set or sample block.

    The block branch transforms the whole ``(n, T, v)`` tensor in place of
    per-series passes and reads the pooled matrix straight off the block
    columns; row order and every cell match the per-series pooling, so the
    downstream distances are bitwise-identical across layouts.
    """
    if isinstance(sample, SampleBlock):
        values = (
            transform.forward_values(sample.values, sample.attributes)
            if transform is not None
            else sample.values
        )
        flat = values.reshape(-1, values.shape[-1])
        return flat[~np.isnan(flat).any(axis=1)]
    scaled = transform.apply_dataset(sample) if transform is not None else sample
    return scaled.pooled(dropna="any")


def statistical_distortion(
    dirty: Sample,
    treated: Sample,
    distance: Optional[Distance] = None,
    transform: Optional[ScaleTransform] = None,
) -> float:
    """Distance between the pooled empirical distributions of two data sets.

    Parameters
    ----------
    dirty:
        The untreated data set ``D`` (the reference distribution).
    treated:
        The cleaned data set ``DC``.
    distance:
        Any :class:`~repro.distance.base.Distance`; defaults to the paper's
        EMD.
    transform:
        Optional analysis-scale transform applied to both sides first (the
        log-attr1 experimental factor). Rows with missing values carry no
        mass and are dropped by the distance.
    """
    return statistical_distortion_batch(
        dirty, [treated], distance=distance, transform=transform
    )[0]


def statistical_distortion_batch(
    dirty: Sample,
    treated_seq: Sequence[Sample],
    distance: Optional[Distance] = None,
    transform: Optional[ScaleTransform] = None,
) -> list[float]:
    """Distortion of many treated data sets against one dirty reference.

    The batched form of :func:`statistical_distortion` used by the
    experiment framework to score a whole strategy panel per replication:
    the dirty side is transformed and pooled exactly once, and distances
    that implement a cached ``pairwise`` path (the default EMD does) bin
    the reference once on a grid shared by all candidates instead of
    re-binning it per strategy. Returns one distortion per treated data
    set, in order. Either side may be a columnar
    :class:`~repro.data.block.SampleBlock` — its pooled rows are read
    straight off the block columns, bitwise-identical to the per-series
    pooling.

    **Shared-support semantics** (multivariate EMD): the grid spans the
    pooled union of the dirty sample and *every* treated candidate — the
    paper's "bins covering this support". All values within one panel are
    therefore computed on identical bins and are directly comparable to
    each other, but a candidate with an extreme range stretches the grid
    for the whole panel, so an individual value can shift slightly (within
    EMD's binning-insensitivity envelope) when the panel composition
    changes. For a panel-independent per-pair value, call
    :func:`statistical_distortion`, which covers only that pair's support.
    The exact univariate path bins nothing and is panel-independent either
    way.
    """
    distance = distance or EarthMoverDistance()
    p = _pooled_analysis(dirty, transform)
    qs = [_pooled_analysis(t, transform) for t in treated_seq]
    if p.shape[0] == 0 or any(q.shape[0] == 0 for q in qs):
        raise DistanceError("no complete records to compare")
    return [float(d) for d in distance.pairwise(p, qs)]


class StreamingDistortion:
    """One-pass, out-of-core distortion of many candidates against one
    reference.

    The pooled-sample form above materialises every side as an ``(N, v)``
    array; at population scale that is exactly the "store all the data" the
    paper's stream setting rules out. This accumulator never pools anything:

    1. ``observe_reference`` folds reference slabs into a tiny *sketch* —
       running sum/sum-of-squares for the standardisation frame and exact
       running min/max for the support bounds;
    2. ``freeze_grid`` turns the sketch into a shared
       :class:`~repro.distance.histogram.HistogramGrid` (uniform edges only —
       quantile edges need the pooled sample by definition);
    3. ``observe`` folds ``(reference_slab, candidate_slabs)`` pairs into
       mergeable integer bin counts — the single pass over the candidate
       data;
    4. ``finalize`` cancels the bin-for-bin shared mass and solves the
       residual transport problem **once**, batched across the whole panel.

    Count folding on the frozen grid is bitwise-exact (integer counts,
    elementwise bin assignment — the property ``tests`` pin down). Two
    deliberate approximations separate the result from the pooled path:
    the frame is a streamed moment estimate (ulp-level accumulation error),
    and the grid spans the *reference* support only — the pooled path's
    grid spans the union of reference and candidates, so candidate mass
    outside the reference range clips into the boundary bins here. When
    candidates can move mass beyond the reference range (imputation past
    the observed maximum, say), pass ``support_margin`` to
    :meth:`freeze_grid` to buy headroom; within-support streams agree with
    the pooled path exactly up to the frame ulps.

    Parameters
    ----------
    n_candidates:
        Number of treated candidates scored against the reference.
    distance:
        An :class:`~repro.distance.emd.EarthMoverDistance` (its binner
        supplies ``n_bins`` and must use uniform binning — the default).
    transform:
        Optional analysis-scale transform applied slab-wise (elementwise, so
        slab application matches whole-population application exactly).
    """

    def __init__(
        self,
        n_candidates: int,
        distance: Optional[EarthMoverDistance] = None,
        transform: Optional[ScaleTransform] = None,
    ):
        if n_candidates < 1:
            raise DistanceError("need at least one candidate")
        self.distance = distance or EarthMoverDistance()
        binner = getattr(self.distance, "binner", None)
        if binner is None or binner.binning != "uniform":
            raise DistanceError(
                "StreamingDistortion needs a histogram-based distance with "
                "uniform binning"
            )
        self.transform = transform
        self.n_candidates = n_candidates
        self._dim: Optional[int] = None
        self._count = 0
        self._sum: Optional[np.ndarray] = None
        self._sumsq: Optional[np.ndarray] = None
        self._mins: Optional[np.ndarray] = None
        self._maxs: Optional[np.ndarray] = None
        self._grid = None
        self._accumulators = None

    # -- pass 1: the reference sketch ------------------------------------------

    def _rows(self, sample) -> np.ndarray:
        if isinstance(sample, np.ndarray):
            # Raw pooled rows: apply the transform columnwise only if the
            # caller didn't — arrays are taken as already analysis-scale.
            rows = np.asarray(sample, dtype=float)
            if rows.ndim != 2:
                raise DistanceError(f"slab rows must be (N, d), got {rows.shape}")
            return rows[~np.isnan(rows).any(axis=1)]
        return _pooled_analysis(sample, self.transform)

    def observe_reference(self, sample: Sample) -> None:
        """Fold one reference slab into the frame/support sketch."""
        if self._grid is not None:
            raise DistanceError("grid already frozen; no more reference slabs")
        rows = self._rows(sample)
        if rows.shape[0] == 0:
            return
        if self._dim is None:
            self._dim = rows.shape[1]
            self._sum = np.zeros(self._dim)
            self._sumsq = np.zeros(self._dim)
            self._mins = np.full(self._dim, np.inf)
            self._maxs = np.full(self._dim, -np.inf)
        elif rows.shape[1] != self._dim:
            raise DistanceError(
                f"dimension mismatch: expected d={self._dim}, got {rows.shape[1]}"
            )
        self._count += rows.shape[0]
        self._sum += rows.sum(axis=0)
        self._sumsq += (rows * rows).sum(axis=0)
        self._mins = np.minimum(self._mins, rows.min(axis=0))
        self._maxs = np.maximum(self._maxs, rows.max(axis=0))

    def freeze_grid(self, support_margin: float = 0.0) -> None:
        """Fix the shared grid from the accumulated reference sketch.

        ``support_margin`` widens the standardised support symmetrically by
        the given fraction of its width — headroom for candidates whose mass
        moves outside the reference range (out-of-range rows otherwise clip
        into the boundary bins, the usual sketch trade).
        """
        if self._grid is not None:
            return
        if self._count == 0:
            raise DistanceError("no reference rows observed")
        binner = self.distance.binner
        if binner.standardize:
            mean = self._sum / self._count
            var = self._sumsq / self._count - mean * mean
            scale = np.sqrt(np.maximum(var, 0.0))
            scale = np.where(scale > 0, scale, 1.0)
            shift = mean
        else:
            shift = np.zeros(self._dim)
            scale = np.ones(self._dim)
        mins = (self._mins - shift) / scale
        maxs = (self._maxs - shift) / scale
        if support_margin:
            widths = maxs - mins
            mins = mins - support_margin * widths
            maxs = maxs + support_margin * widths
        self._grid = binner.grid_from_stats(shift, scale, mins, maxs)
        self._accumulators = [
            self._grid.accumulator() for _ in range(self.n_candidates + 1)
        ]

    @property
    def grid(self):
        """The frozen shared grid (``None`` before :meth:`freeze_grid`)."""
        return self._grid

    # -- pass 2: the one pass over candidate slabs ------------------------------

    def observe(self, reference_slab: Sample, candidate_slabs: Sequence[Sample]) -> None:
        """Fold one aligned slab of the reference and every candidate."""
        if self._grid is None:
            self.freeze_grid()
        if len(candidate_slabs) != self.n_candidates:
            raise DistanceError(
                f"expected {self.n_candidates} candidate slabs, "
                f"got {len(candidate_slabs)}"
            )
        self._accumulators[0].add(self._rows(reference_slab))
        for acc, slab in zip(self._accumulators[1:], candidate_slabs):
            acc.add(self._rows(slab))

    def finalize(self) -> list[float]:
        """Panel distortions: residual-transport EMD solved once at the end."""
        if self._grid is None or self._accumulators[0].total == 0:
            raise DistanceError("no slabs observed")
        hp = self._accumulators[0].finalize()
        hqs = [acc.finalize() for acc in self._accumulators[1:]]
        return emd_between_histograms_batch(
            hp, hqs, backend=self.distance.backend
        )


def statistical_distortion_stream(
    reference_slabs: Iterable[Sample],
    paired_slabs: Iterable[tuple[Sample, Sequence[Sample]]],
    n_candidates: int,
    distance: Optional[EarthMoverDistance] = None,
    transform: Optional[ScaleTransform] = None,
    support_margin: float = 0.0,
) -> list[float]:
    """Distortion of ``n_candidates`` treated streams against a reference
    stream, without pooling either side.

    ``reference_slabs`` drives the cheap frame/support sketch pre-pass;
    ``paired_slabs`` yields ``(reference_slab, [candidate_slab, ...])``
    tuples and is consumed exactly once — the single pass over the treated
    data. ``support_margin`` is forwarded to
    :meth:`StreamingDistortion.freeze_grid` — headroom for candidate mass
    outside the reference support. See :class:`StreamingDistortion` for the
    accumulation contract.
    """
    stream = StreamingDistortion(
        n_candidates, distance=distance, transform=transform
    )
    for slab in reference_slabs:
        stream.observe_reference(slab)
    stream.freeze_grid(support_margin=support_margin)
    for reference_slab, candidates in paired_slabs:
        stream.observe(reference_slab, candidates)
    return stream.finalize()
