"""Statistical distortion — Definition 1 of the paper.

``S(C, D) = d(D, DC)``: the distributional distance between a data set and
its cleaned counterpart. Distortion is measured **against the dirty data**
("we measure distortion against the original, but calibrate cleanliness with
respect to the ideal", Section 1.1), pooling every time instant as one
``v``-tuple (Section 6.1) on the analysis scale of the experiment.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.data.dataset import StreamDataset
from repro.distance.base import Distance
from repro.distance.emd import EarthMoverDistance
from repro.errors import DistanceError
from repro.glitches.detectors import ScaleTransform

__all__ = ["statistical_distortion", "statistical_distortion_batch"]


def statistical_distortion(
    dirty: StreamDataset,
    treated: StreamDataset,
    distance: Optional[Distance] = None,
    transform: Optional[ScaleTransform] = None,
) -> float:
    """Distance between the pooled empirical distributions of two data sets.

    Parameters
    ----------
    dirty:
        The untreated data set ``D`` (the reference distribution).
    treated:
        The cleaned data set ``DC``.
    distance:
        Any :class:`~repro.distance.base.Distance`; defaults to the paper's
        EMD.
    transform:
        Optional analysis-scale transform applied to both sides first (the
        log-attr1 experimental factor). Rows with missing values carry no
        mass and are dropped by the distance.
    """
    return statistical_distortion_batch(
        dirty, [treated], distance=distance, transform=transform
    )[0]


def statistical_distortion_batch(
    dirty: StreamDataset,
    treated_seq: Sequence[StreamDataset],
    distance: Optional[Distance] = None,
    transform: Optional[ScaleTransform] = None,
) -> list[float]:
    """Distortion of many treated data sets against one dirty reference.

    The batched form of :func:`statistical_distortion` used by the
    experiment framework to score a whole strategy panel per replication:
    the dirty side is transformed and pooled exactly once, and distances
    that implement a cached ``pairwise`` path (the default EMD does) bin
    the reference once on a grid shared by all candidates instead of
    re-binning it per strategy. Returns one distortion per treated data
    set, in order.

    **Shared-support semantics** (multivariate EMD): the grid spans the
    pooled union of the dirty sample and *every* treated candidate — the
    paper's "bins covering this support". All values within one panel are
    therefore computed on identical bins and are directly comparable to
    each other, but a candidate with an extreme range stretches the grid
    for the whole panel, so an individual value can shift slightly (within
    EMD's binning-insensitivity envelope) when the panel composition
    changes. For a panel-independent per-pair value, call
    :func:`statistical_distortion`, which covers only that pair's support.
    The exact univariate path bins nothing and is panel-independent either
    way.
    """
    distance = distance or EarthMoverDistance()
    if transform is not None:
        dirty = transform.apply_dataset(dirty)
        treated_seq = [transform.apply_dataset(t) for t in treated_seq]
    p = dirty.pooled(dropna="any")
    qs = [t.pooled(dropna="any") for t in treated_seq]
    if p.shape[0] == 0 or any(q.shape[0] == 0 for q in qs):
        raise DistanceError("no complete records to compare")
    return [float(d) for d in distance.pairwise(p, qs)]
