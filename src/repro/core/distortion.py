"""Statistical distortion — Definition 1 of the paper.

``S(C, D) = d(D, DC)``: the distributional distance between a data set and
its cleaned counterpart. Distortion is measured **against the dirty data**
("we measure distortion against the original, but calibrate cleanliness with
respect to the ideal", Section 1.1), pooling every time instant as one
``v``-tuple (Section 6.1) on the analysis scale of the experiment.
"""

from __future__ import annotations

from typing import Optional

from repro.data.dataset import StreamDataset
from repro.distance.base import Distance
from repro.distance.emd import EarthMoverDistance
from repro.errors import DistanceError
from repro.glitches.detectors import ScaleTransform

__all__ = ["statistical_distortion"]


def statistical_distortion(
    dirty: StreamDataset,
    treated: StreamDataset,
    distance: Optional[Distance] = None,
    transform: Optional[ScaleTransform] = None,
) -> float:
    """Distance between the pooled empirical distributions of two data sets.

    Parameters
    ----------
    dirty:
        The untreated data set ``D`` (the reference distribution).
    treated:
        The cleaned data set ``DC``.
    distance:
        Any :class:`~repro.distance.base.Distance`; defaults to the paper's
        EMD.
    transform:
        Optional analysis-scale transform applied to both sides first (the
        log-attr1 experimental factor). Rows with missing values carry no
        mass and are dropped by the distance.
    """
    distance = distance or EarthMoverDistance()
    if transform is not None:
        dirty = transform.apply_dataset(dirty)
        treated = transform.apply_dataset(treated)
    p = dirty.pooled(dropna="any")
    q = treated.pooled(dropna="any")
    if p.shape[0] == 0 or q.shape[0] == 0:
        raise DistanceError("no complete records to compare")
    return distance(p, q)
