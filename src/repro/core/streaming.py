"""The streaming slab engine — the full experiment, out of core.

The materialised path builds one :class:`PopulationBundle` (every series,
ledger and mask in memory at once) and samples replications out of whole
parent blocks. This module runs the *same* experiment — generate → inject →
identify_ideal → sample replications → clean → score — over bounded
:mod:`slab <repro.data.slab>` passes instead, so peak memory is O(one shard)
plus O(what the replications actually touch), never O(population):

* the **fixed-point split** (Section 2.1.2's ideal-set identification)
  re-streams the spilled shards once per round: cleanliness verdicts come
  back as a few floats per series, and the 3-sigma fit pools one
  attribute's ideal column at a time;
* **replication sampling** draws the exact per-replication index streams of
  :func:`~repro.sampling.replication.replication_index_streams` first, and
  then gathers only the union of touched series — at most ``2 x R x B``
  distinct of them, independent of the population size — into a
  :class:`~repro.sampling.replication.ParentGather`;
* optional **bottom-k / priority sketches** (weights = per-series glitch
  scores) are built shard by shard and unioned, summarising the dirty
  population's glitch mass without ever holding it.

The engine is contractually **bitwise-identical** to the in-memory path:
every per-series random stream is pre-spawned by index (the PR 2 contract),
the sigma fit replays the exact pooled-column arithmetic, and the gathered
parents replay the exact parent-block gathers — ``tests/test_streaming.py``
pins outcome equality across the serial, thread and process backends.
Select the engine with ``ExperimentConfig(streaming=True)`` or
``REPRO_STREAM=1`` (see :func:`streaming_enabled`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import partial
from typing import Optional, Sequence

import numpy as np

from repro.cleaning.base import CleaningStrategy
from repro.core.executor import resolve_backend
from repro.core.framework import (
    ExperimentConfig,
    ExperimentResult,
    run_pair_stream,
)
from repro.core.glitch_index import GlitchWeights, series_glitch_score
from repro.data.generator import GeneratorConfig
from repro.data.glitch_injection import GlitchInjectionConfig
from repro.data.slab import SlabFeed, SlabSource, load_slab
from repro.data.stream import TimeSeries
from repro.distance.base import Distance
from repro.errors import ValidationError
from repro.core.incremental import (
    analysis_column,
    build_parent_gathers,
    fit_sigma_limits,
    identify_fixed_point,
    iter_test_pairs,
    outlier_record_fraction,
    split_verdicts,
)
from repro.glitches.constraints import ConstraintSet, paper_constraints
from repro.glitches.detectors import DetectorSuite, ScaleTransform, SigmaLimits
from repro.glitches.missing import detect_missing
from repro.sampling.bottom_k import BottomKSketch, indexed_ranks, union_sketches
from repro.sampling.priority import PrioritySample, priority_sample_indexed
from repro.sampling.replication import replication_index_streams
from repro.testing.faults import inject_fault
from repro.utils.rng import Seed, as_generator, snapshot_seed, spawn_sequences
from repro.utils.validation import check_fraction

__all__ = [
    "STREAM_ENV_VAR",
    "streaming_enabled",
    "StreamingExperiment",
    "StreamingResult",
    "run_streaming_experiment",
]

#: Environment variable selecting the streaming engine (``1``/``on`` enable).
STREAM_ENV_VAR = "REPRO_STREAM"


def streaming_enabled(config: Optional[ExperimentConfig] = None) -> bool:
    """Whether the streaming slab engine is selected.

    An explicit ``ExperimentConfig(streaming=...)`` wins; ``None`` defers to
    the ``REPRO_STREAM`` environment variable; the default is the in-memory
    path. Either choice computes identical numbers — streaming changes the
    memory profile, never the outcomes.
    """
    if config is not None and config.streaming is not None:
        return bool(config.streaming)
    return os.environ.get(STREAM_ENV_VAR, "").strip().lower() in ("1", "on", "true", "yes")


# ---------------------------------------------------------------------------
# Per-shard work units (module-level and frozen: they ship to process pools)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ProfileSpec:
    """Round-0 pass: spill + the suite-independent cleanliness fractions."""

    constraints: ConstraintSet


def _profile_slab(spec: _ProfileSpec, source: SlabSource) -> tuple[np.ndarray, np.ndarray]:
    """Per-series record-level missing/inconsistent fractions of one shard.

    These two rates never depend on the fitted detector, so they are
    computed once and reused by every fixed-point round; the floats replay
    ``GlitchMatrix.record_fraction`` exactly (same boolean reductions, same
    division).
    """
    inject_fault("unit")
    series = load_slab(source, spill=True)
    miss = np.empty(len(series))
    inc = np.empty(len(series))
    for i, s in enumerate(series):
        miss[i] = float(detect_missing(s).any(axis=1).mean())
        inc[i] = float(spec.constraints.evaluate(s).any(axis=1).mean())
    return miss, inc


@dataclass(frozen=True)
class _OutlierSpec:
    """Per-round pass: outlier record fractions under the current suite."""

    suite: DetectorSuite


def _outlier_slab(spec: _OutlierSpec, source: SlabSource) -> np.ndarray:
    inject_fault("unit")
    series = load_slab(source)
    return np.array([outlier_record_fraction(s, spec.suite) for s in series])


@dataclass(frozen=True)
class _ColumnSpec:
    """Fit pass: one attribute's analysis-scale ideal column, shard by shard."""

    transform: Optional[ScaleTransform]
    attr_index: int
    attr_name: str


def _column_slab(
    spec: _ColumnSpec, unit: tuple[SlabSource, np.ndarray]
) -> list[np.ndarray]:
    """Complete column values of the shard's ideal-verdict series.

    Replays the ``transform.apply_dataset`` → ``pooled_column(dropna=True)``
    arithmetic per series: the elementwise transform and the NaN drop both
    commute with concatenation, so the coordinator's concatenated column is
    bitwise-identical to pooling the materialised ideal data set.
    """
    inject_fault("unit")
    source, keep = unit
    series = load_slab(source)
    return [
        analysis_column(s, spec.attr_index, spec.attr_name, spec.transform)
        for s, keep_one in zip(series, keep)
        if keep_one
    ]


@dataclass(frozen=True)
class _GatherSpec:
    """Final pass: gather the replication-touched series (+ glitch scores)."""

    needed: frozenset
    suite: Optional[DetectorSuite]
    weights: Optional[GlitchWeights]


def _gather_slab(
    spec: _GatherSpec, unit: tuple[SlabSource, np.ndarray]
) -> tuple[list[tuple[int, TimeSeries]], np.ndarray]:
    """Kept ``(population index, series)`` pairs plus (optionally) the
    glitch scores of the shard's dirty members, in shard order."""
    inject_fault("unit")
    source, dirty_mask = unit
    series = load_slab(source)
    kept: list[tuple[int, TimeSeries]] = []
    scores: list[float] = []
    for offset, (s, is_dirty) in enumerate(zip(series, dirty_mask)):
        idx = source.start + offset
        if spec.suite is not None and is_dirty:
            scores.append(series_glitch_score(spec.suite.annotate(s), spec.weights))
        if idx in spec.needed:
            # Deep-copy the arrays: store-loaded series are views into the
            # whole shard's tensor, and keeping a view would pin the shard —
            # exactly the O(population) retention the gather exists to avoid.
            kept.append(
                (
                    idx,
                    TimeSeries(
                        s.node,
                        s.values.copy(),
                        s.attributes,
                        None if s.truth is None else s.truth.copy(),
                    ),
                )
            )
    return kept, np.array(scores)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclass
class StreamingResult:
    """Everything one streaming run produced.

    ``result`` is the ordinary :class:`ExperimentResult` —
    outcome-for-outcome identical to the in-memory path. The rest is the
    engine's bounded population summary: the dirty/ideal split, the fitted
    suite, and (when ``sketch_k`` was set) the glitch-score sketches over
    the shard stream.
    """

    result: ExperimentResult
    n_series: int
    dirty_indices: list[int]
    ideal_indices: list[int]
    suite: DetectorSuite
    n_gathered: int
    n_store_passes: int
    spilled_bytes: int
    n_evicted: int = 0
    glitch_scores: Optional[np.ndarray] = None
    sketch: Optional[BottomKSketch] = None
    priority: Optional[PrioritySample] = None

    @property
    def outcomes(self):
        """The outcome list (shorthand for ``result.outcomes``)."""
        return self.result.outcomes


class StreamingExperiment:
    """Runs the full experiment over a :class:`~repro.data.slab.SlabFeed`.

    Parameters
    ----------
    generator_config, injection_config, seed:
        The population recipe — identical to what
        :func:`~repro.experiments.config.build_population` would take; for
        equal inputs the engine's outcomes equal the materialised path's bit
        for bit.
    config:
        The :class:`ExperimentConfig` of the replication loop.
    constraints, transform, k, max_fraction, max_iter:
        The ideal-identification parameters (same defaults as
        :func:`~repro.glitches.detectors.identify_ideal`).
    backend, n_workers, shard_size:
        Execution backend and shard layout for every streamed pass (and the
        replication evaluation); a pure wall-clock knob.
    spill, spill_dir, disk_budget:
        Whether/where shards spill to disk after the first materialisation;
        with spilling off every pass regenerates from the seed recipes
        (same numbers, more compute, zero disk). Spilled shards are
        fingerprinted columnar store files (:mod:`repro.store.shards`)
        served back as zero-copy memory-mapped views; ``disk_budget``
        bounds the store in bytes (``REPRO_DISK_BUDGET`` applies when
        ``None``), evicting over-budget shards back to their recipes
        between passes — a pure disk/compute trade, never a numbers
        change.
    sketch_k:
        When set, the final pass also scores every dirty series and builds a
        bottom-k sketch and a priority sample (weights = glitch scores) by
        shard-stream union; ``None`` (default) skips the extra annotation.
    """

    def __init__(
        self,
        generator_config: Optional[GeneratorConfig] = None,
        injection_config: Optional[GlitchInjectionConfig] = None,
        seed: Seed = 0,
        config: Optional[ExperimentConfig] = None,
        constraints: Optional[ConstraintSet] = None,
        transform: Optional[ScaleTransform] = None,
        k: float = 3.0,
        max_fraction: float = 0.05,
        max_iter: int = 3,
        backend: Optional[object] = None,
        n_workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        spill: bool = True,
        spill_dir: Optional[str] = None,
        disk_budget: Optional[int] = None,
        sketch_k: Optional[int] = None,
    ):
        if max_iter < 1:
            raise ValidationError("max_iter must be >= 1")
        self.config = config or ExperimentConfig()
        if not isinstance(self.config.seed, int):
            # The in-memory path consumes a shared SeedSequence/Generator
            # config seed in lazy spawn order (strategy seeds first, pair
            # draws second); the engine draws pairs eagerly, so only the
            # disjoint int derivation (seed vs seed + 1) replays identically.
            raise ValidationError(
                "streaming identity requires an int ExperimentConfig.seed; "
                "SeedSequence/Generator seeds are consumed order-dependently "
                "by the in-memory replication loop"
            )
        self.constraints = (
            constraints if constraints is not None else paper_constraints()
        )
        self.transform = transform
        self.k = k
        self.max_fraction = check_fraction(max_fraction, "max_fraction")
        self.max_iter = max_iter
        self.sketch_k = sketch_k
        # Snapshot mutable SeedSequence seeds so the engine's derivations
        # (and the sketch stream) replay children 0..n regardless of what
        # the caller spawned from the sequence before.
        self.seed = snapshot_seed(seed)
        # The ExperimentConfig backend knob applies here exactly as it does
        # to ExperimentRunner: an explicit argument wins, then the config's
        # backend/n_workers, then REPRO_BACKEND (inside Pipeline.coerce).
        if backend is None:
            backend = self.config.backend
        if n_workers is None:
            n_workers = self.config.n_workers
        # The replication evaluation resolves its backend separately: the
        # feed's Pipeline exempts coarse shard passes from the process
        # backend's small-batch fallback, but the pair units are exactly the
        # cheap stream that fallback protects (matching ExperimentRunner).
        from repro.core.executor import ProcessBackend
        from repro.core.pipeline import Pipeline as _Pipeline

        if isinstance(backend, _Pipeline):
            eval_backend = backend.backend
            if type(eval_backend) is ProcessBackend:
                # Undo the pipeline's coarse-stage exemption for pair
                # evaluation: rebuild a sibling with the default threshold.
                eval_backend = ProcessBackend(
                    n_workers=eval_backend.n_workers,
                    chunksize=eval_backend.chunksize,
                    start_method=eval_backend.start_method,
                )
            self._eval_backend = eval_backend
        else:
            self._eval_backend = resolve_backend(backend, n_workers=n_workers)
        self.feed = SlabFeed(
            generator_config,
            injection_config,
            seed=seed,
            backend=backend,
            n_workers=n_workers,
            shard_size=shard_size,
            spill=spill,
            spill_dir=spill_dir,
            disk_budget=disk_budget,
        )
        self._store_passes = 0
        self._identified: Optional[tuple[np.ndarray, DetectorSuite]] = None

    @classmethod
    def from_scale(cls, scale: str = "small", seed: Seed = 0, **kwargs) -> "StreamingExperiment":
        """An engine for one of the named scale presets (tiny/small/paper)."""
        from repro.experiments.config import SCALES, experiment_config
        from repro.errors import ExperimentError

        if scale not in SCALES:
            raise ExperimentError(
                f"scale must be one of {sorted(SCALES)}, got {scale!r}"
            )
        kwargs.setdefault("config", experiment_config(scale))
        return cls(
            generator_config=SCALES[scale].generator, seed=seed, **kwargs
        )

    # -- streamed passes --------------------------------------------------------

    def _map(self, fn, items=None) -> list:
        self._store_passes += 1
        return self.feed.map(fn, items)

    def _shard_units(self, per_series: np.ndarray) -> list:
        """Zip every source with its slice of a per-series array."""
        return [
            (source, per_series[source.start : source.stop])
            for source in self.feed.sources
        ]

    def _fit_limits(self, verdicts: np.ndarray) -> SigmaLimits:
        """The 3-sigma fit on the current ideal set, one attribute at a time.

        Peak memory is one attribute's pooled ideal column — the engine
        never holds the ideal *data set*. The concatenated column replays
        ``StreamDataset.pooled_column`` exactly (see :func:`_column_slab`),
        so the limits are bitwise-identical to
        ``SigmaLimits.from_dataset(scaled_ideal, k=k)``.
        """
        def columns(j: int, attr: str) -> list[np.ndarray]:
            spec = _ColumnSpec(
                transform=self.transform, attr_index=j, attr_name=attr
            )
            chunks = self._map(
                partial(_column_slab, spec), self._shard_units(verdicts)
            )
            return [c for chunk in chunks for c in chunk]

        return fit_sigma_limits(self.attributes, columns, self.k)

    @staticmethod
    def _split(verdicts: np.ndarray) -> tuple[list[int], list[int]]:
        return split_verdicts(verdicts)

    def identify(self) -> tuple[np.ndarray, DetectorSuite]:
        """Stream the ideal-set / outlier-limit fixed point.

        The loop structure replays
        :func:`~repro.glitches.detectors.identify_ideal` round for round —
        bootstrap split on missing+inconsistent rates, then fit → re-verdict
        → re-split until membership is stable — with every per-series pass
        fanned over the feed's backend and nothing retained beyond verdicts
        and a handful of floats per series.

        The fixed point is a pure function of the population recipe and the
        identification parameters (all fixed at construction), so it is
        memoised: repeated :meth:`run` calls on one engine — the sweep
        planner evaluates every cell of a shared-recipe group through one
        engine — pay the identification passes once.
        """
        if self._identified is not None:
            return self._identified
        from repro.glitches.types import N_GLITCH_TYPES

        if N_GLITCH_TYPES != 3:  # pragma: no cover - future-taxonomy tripwire
            raise ValidationError(
                "the streaming verdict replay covers exactly the "
                "missing/inconsistent/outlier taxonomy; a new GlitchType "
                "needs its record fraction added to _profile_slab/_outlier_slab "
                "before the identity contract holds again"
            )
        if not hasattr(self, "attributes"):
            # Peek one shard for the attribute schema (it spills for reuse).
            self.attributes = load_slab(self.feed.sources[0], spill=True)[0].attributes
        profile = self._map(partial(_profile_slab, _ProfileSpec(self.constraints)))
        miss = np.concatenate([m for m, _ in profile])
        inc = np.concatenate([i for _, i in profile])
        verdicts, suite = identify_fixed_point(
            miss,
            inc,
            self.constraints,
            self.transform,
            fit_limits=self._fit_limits,
            outlier_fractions=lambda suite: np.concatenate(
                self._map(partial(_outlier_slab, _OutlierSpec(suite)))
            ),
            max_fraction=self.max_fraction,
            max_iter=self.max_iter,
        )
        self._identified = (verdicts, suite)
        return verdicts, suite

    # -- the full run -----------------------------------------------------------

    def run(
        self,
        strategies: Sequence[CleaningStrategy],
        distance: Optional[Distance] = None,
        weights: Optional[GlitchWeights] = None,
        constraints: Optional[ConstraintSet] = None,
        cleanup: bool = True,
        config: Optional[ExperimentConfig] = None,
    ) -> StreamingResult:
        """Run the whole experiment out of core.

        *constraints* here are the evaluation-time rules (defaulting to the
        paper's, like :class:`~repro.core.framework.ExperimentRunner`);
        the identification-time rules were fixed at construction.
        *distance* is any :class:`~repro.distance.base.Distance` instance;
        ``None`` defers to the config's ``distance`` selector and then the
        paper's EMD — the same resolution the in-memory runner applies, so
        KL/JS/KS-scored streaming runs stay bitwise-identical to their
        block-path counterparts.

        *config* overrides the engine's replication config for this call
        only (the population recipe and identification parameters stay
        fixed): the sweep planner runs every cell of a shared-recipe group
        through one engine — same feed, same memoised identification —
        varying only the replication loop. Pass ``cleanup=False`` between
        such calls so the spilled shards survive for the next cell.
        """
        cfg = self.config if config is None else config
        if not isinstance(cfg.seed, int):
            raise ValidationError(
                "streaming identity requires an int ExperimentConfig.seed; "
                "SeedSequence/Generator seeds are consumed order-dependently "
                "by the in-memory replication loop"
            )
        try:
            verdicts, suite = self.identify()
            dirty_idx, ideal_idx = self._split(verdicts)

            # Draw the replication index streams up front — they only need
            # the two population sizes — then gather just the touched series.
            draws = list(
                replication_index_streams(
                    len(dirty_idx),
                    len(ideal_idx),
                    cfg.n_replications,
                    cfg.sample_size,
                    seed=cfg.seed,
                )
            )
            needed = frozenset(
                {dirty_idx[int(i)] for d_idx, _ in draws for i in d_idx}
                | {ideal_idx[int(i)] for _, i_idx in draws for i in i_idx}
            )
            gather_spec = _GatherSpec(
                needed=needed,
                suite=suite if self.sketch_k is not None else None,
                weights=weights if self.sketch_k is not None else None,
            )
            chunks = self._map(
                partial(_gather_slab, gather_spec), self._shard_units(~verdicts)
            )
            entries = {idx: s for kept, _ in chunks for idx, s in kept}

            scores = sketch = priority = None
            if self.sketch_k is not None:
                scores, sketch, priority = self._sketch(
                    dirty_idx, [s for _, s in chunks]
                )

            dirty_gather, ideal_gather, use_block = build_parent_gathers(
                dirty_idx, ideal_idx, entries, self.feed.lengths
            )

            result = run_pair_stream(
                iter_test_pairs(draws, dirty_gather, ideal_gather, use_block),
                strategies,
                config=cfg,
                distance=distance,
                weights=weights,
                constraints=constraints,
                backend=self._eval_backend,
            )
            return StreamingResult(
                result=result,
                n_series=self.feed.n_series,
                dirty_indices=dirty_idx,
                ideal_indices=ideal_idx,
                suite=suite,
                n_gathered=len(entries),
                n_store_passes=self._store_passes,
                spilled_bytes=self.feed.spilled_bytes(),
                n_evicted=self.feed.n_evicted,
                glitch_scores=scores,
                sketch=sketch,
                priority=priority,
            )
        finally:
            if cleanup:
                self.feed.cleanup()

    def _sketch(
        self, dirty_idx: list[int], score_chunks: Sequence[np.ndarray]
    ) -> tuple[np.ndarray, BottomKSketch, PrioritySample]:
        """Shard-stream sketches of the dirty population's glitch mass.

        Per-item ranks are pre-spawned by dirty-order index from a dedicated
        child of the root seed, so each shard sketches its own slice and the
        union *is* the population sketch (the distributed-collection
        identity the property tests pin).
        """
        scores = np.concatenate(score_chunks) if score_chunks else np.empty(0)
        # Re-snapshot per call: spawning mutates the stored sequence's child
        # counter, and repeated run() must derive the same sketch stream.
        sketch_seq = spawn_sequences(as_generator(snapshot_seed(self.seed)), 3)[2]
        ranks = indexed_ranks(len(scores), sketch_seq)
        shard_sketches = []
        pos = 0
        for chunk in score_chunks:
            n = len(chunk)
            if n == 0:
                continue
            shard_sketches.append(
                BottomKSketch.from_weights(
                    keys=dirty_idx[pos : pos + n],
                    weights=chunk,
                    k=self.sketch_k,
                    ranks=ranks[pos : pos + n],
                )
            )
            pos += n
        sketch = union_sketches(shard_sketches)
        priority = priority_sample_indexed(
            keys=dirty_idx, weights=scores, k=self.sketch_k, ranks=ranks
        )
        return scores, sketch, priority


def run_streaming_experiment(
    scale: str = "small",
    seed: Seed = 0,
    config: Optional[ExperimentConfig] = None,
    strategies: Optional[Sequence[CleaningStrategy]] = None,
    distance: Optional[Distance] = None,
    **kwargs,
) -> StreamingResult:
    """One-call streaming run of the Figure-6 experiment at a named scale.

    *distance* overrides the config's ``distance`` selector with an explicit
    instance, exactly like the in-memory :class:`ExperimentRunner`.
    """
    from repro.cleaning.registry import paper_strategies

    engine = StreamingExperiment.from_scale(
        scale, seed=seed, **({"config": config} if config else {}), **kwargs
    )
    return engine.run(
        list(strategies) if strategies else paper_strategies(),
        distance=distance,
    )
