"""Small shared utilities: validation helpers and RNG plumbing."""

from repro.utils.rng import as_generator, spawn_generators, spawn_sequences
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability,
    ensure_1d,
    ensure_2d,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "spawn_sequences",
    "check_fraction",
    "check_positive_int",
    "check_probability",
    "ensure_1d",
    "ensure_2d",
]
