"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed (``int``),
``None`` (fresh OS entropy) or an existing :class:`numpy.random.Generator`.
These helpers normalise that flexibility in one place so call sites stay
simple and deterministic experiments stay deterministic.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

Seed = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["Seed", "as_generator", "spawn_sequences", "spawn_generators"]


def as_generator(seed: Seed = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``Generator`` instances are passed through unchanged, so components can
    share a stream when the caller wants correlated draws, while plain ints
    give reproducible independent streams.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_sequences(seed: Seed, n: int) -> list[np.random.SeedSequence]:
    """Spawn *n* statistically independent child seed sequences from *seed*.

    Child ``i`` is a deterministic function of *seed* and ``i`` alone, never
    of ``n`` or of how the children are later grouped — which is what lets
    the sharded pipeline hand out per-item streams whose draws are identical
    under any shard layout or execution backend. ``SeedSequence`` objects
    pickle cheaply, so work units carry these rather than generators.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        return list(seed.bit_generator.seed_seq.spawn(n))  # type: ignore[union-attr]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return list(seq.spawn(n))


def spawn_generators(seed: Seed, n: int) -> list[np.random.Generator]:
    """Spawn *n* statistically independent child generators from *seed*.

    Used by the replication framework: replication ``i`` always sees the same
    stream regardless of how many replications run or in what order.
    """
    return [np.random.default_rng(child) for child in spawn_sequences(seed, n)]
