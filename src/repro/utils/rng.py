"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed (``int``),
``None`` (fresh OS entropy) or an existing :class:`numpy.random.Generator`.
These helpers normalise that flexibility in one place so call sites stay
simple and deterministic experiments stay deterministic.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

Seed = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = [
    "Seed",
    "as_generator",
    "snapshot_seed",
    "spawn_sequences",
    "spawn_generators",
]


def as_generator(seed: Seed = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``Generator`` instances are passed through unchanged, so components can
    share a stream when the caller wants correlated draws, while plain ints
    give reproducible independent streams.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def snapshot_seed(seed: Seed) -> Seed:
    """A replay-safe snapshot of *seed* for components that re-derive streams.

    ``SeedSequence.spawn`` advances a counter on the parent, so a sequence
    that was already spawned from (say, by a prior ``build_population``
    call) would hand out *different* children on the next derivation. The
    snapshot is a fresh sequence with the same entropy/spawn-key and a
    zeroed child counter: every derivation from it replays children
    ``0..n`` — the unspawned-sequence behaviour the determinism contracts
    assume. Ints and ``None`` are immutable and pass through; a live
    ``Generator`` cannot be snapshotted and is returned as-is for the
    caller to reject if it needs replay.
    """
    if isinstance(seed, np.random.SeedSequence):
        return np.random.SeedSequence(
            entropy=seed.entropy,
            spawn_key=seed.spawn_key,
            pool_size=seed.pool_size,
        )
    return seed


def spawn_sequences(seed: Seed, n: int) -> list[np.random.SeedSequence]:
    """Spawn *n* statistically independent child seed sequences from *seed*.

    Child ``i`` is a deterministic function of *seed* and ``i`` alone, never
    of ``n`` or of how the children are later grouped — which is what lets
    the sharded pipeline hand out per-item streams whose draws are identical
    under any shard layout or execution backend. ``SeedSequence`` objects
    pickle cheaply, so work units carry these rather than generators.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        return list(seed.bit_generator.seed_seq.spawn(n))  # type: ignore[union-attr]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return list(seq.spawn(n))


def spawn_generators(seed: Seed, n: int) -> list[np.random.Generator]:
    """Spawn *n* statistically independent child generators from *seed*.

    Used by the replication framework: replication ``i`` always sees the same
    stream regardless of how many replications run or in what order.
    """
    return [np.random.default_rng(child) for child in spawn_sequences(seed, n)]
