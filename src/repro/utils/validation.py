"""Argument-validation helpers shared across the library.

Each helper raises :class:`repro.errors.ValidationError` with a message that
names the offending parameter, so errors surface at the API boundary instead
of deep inside numpy broadcasting.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "check_positive_int",
    "check_fraction",
    "check_probability",
    "ensure_1d",
    "ensure_2d",
]


def check_positive_int(value: Any, name: str) -> int:
    """Validate that *value* is an integer >= 1 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValidationError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_fraction(value: Any, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be a float in [0, 1], got {value!r}") from None
    if not 0.0 <= value <= 1.0 or np.isnan(value):
        raise ValidationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Alias of :func:`check_fraction` with probability-flavoured wording."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be a probability in [0, 1], got {value!r}") from None
    if not 0.0 <= value <= 1.0 or np.isnan(value):
        raise ValidationError(f"{name} must be a probability in [0, 1], got {value}")
    return value


def ensure_1d(values: Any, name: str) -> np.ndarray:
    """Coerce *values* to a 1-D float array, rejecting higher ranks."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    return arr


def ensure_2d(values: Any, name: str) -> np.ndarray:
    """Coerce *values* to a 2-D float array, rejecting other ranks."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    return arr
