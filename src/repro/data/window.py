"""Windowed history ``F_t^w`` over a data stream.

Section 3.1: "In the data stream context, it is often infeasible to store all
the data. ... In this paper we restrict ourselves to the currently available
window F_t^w, the w time-step history up to time t-1."

:class:`WindowHistory` provides exactly that view for the windowed outlier
detector, without copying the underlying series.
"""

from __future__ import annotations

import numpy as np

from repro.data.stream import TimeSeries
from repro.utils.validation import check_positive_int

__all__ = ["WindowHistory"]


class WindowHistory:
    """Sliding ``w``-step history view over a :class:`TimeSeries`.

    ``history(t)`` returns the rows for times ``t-w .. t-1`` (clipped at the
    start of the stream), i.e. the information set available *before*
    observing ``X^t``.
    """

    def __init__(self, series: TimeSeries, window: int):
        self.series = series
        self.window = check_positive_int(window, "window")

    def history(self, t: int) -> np.ndarray:
        """Rows of the stream in ``[max(0, t-w), t)``; empty at ``t == 0``."""
        if not 0 <= t <= self.series.length:
            raise IndexError(f"t={t} outside [0, {self.series.length}]")
        start = max(0, t - self.window)
        return self.series.values[start:t]

    def history_column(self, t: int, attribute: str) -> np.ndarray:
        """Windowed history of a single attribute."""
        j = self.series.attribute_index(attribute)
        return self.history(t)[:, j]

    def iter_windows(self):
        """Yield ``(t, history_rows)`` for every time step of the stream."""
        for t in range(self.series.length):
            yield t, self.history(t)
