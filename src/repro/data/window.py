"""Windowed history ``F_t^w`` over a data stream.

Section 3.1: "In the data stream context, it is often infeasible to store all
the data. ... In this paper we restrict ourselves to the currently available
window F_t^w, the w time-step history up to time t-1."

:class:`WindowHistory` provides exactly that view for the windowed outlier
detector, without copying the underlying series. Ingestion is shard-aware:
:meth:`WindowHistory.iter_windows` walks any contiguous chunk of the time
axis, :meth:`WindowHistory.shard_bounds` plans the chunk layout, and
:meth:`WindowHistory.map_windows` fans a per-step consumer across those
chunks on an :class:`~repro.core.executor.ExecutionBackend` — each work unit
carries only its slice of the stream plus the ``w``-step overlap it needs,
so a process worker ingests its shard without ever holding the full series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Optional

import numpy as np

from repro.data.stream import TimeSeries
from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> cleaning -> data)
    from repro.core.pipeline import Pipeline

__all__ = [
    "WindowHistory",
    "WindowShard",
    "ingest_window_shard",
    "StreamWindow",
    "cut_series_windows",
]


@dataclass(frozen=True)
class StreamWindow:
    """One contiguous chunk of one live stream, as it arrives at a service.

    The unit of push-driven ingestion: a per-tower feed delivers its series
    as a sequence of ``(w, v)`` value windows, identified by the stream's
    population index and a per-stream sequence number. Windows carry their
    own identity so out-of-order and duplicated delivery are detectable —
    the ``(stream_id, seq)`` pair is the dedup key, and concatenating a
    stream's windows in ``seq`` order reconstructs the original series
    bitwise (:func:`cut_series_windows` guarantees the converse cut).

    ``truth`` rides along when the source series carries pre-glitch ground
    truth (the re-measurement strategies need it); ``node`` preserves the
    series' node identifier for reassembly.
    """

    stream_id: int
    seq: int
    values: np.ndarray
    attributes: tuple[str, ...]
    node: Optional[object] = None
    truth: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.stream_id < 0 or self.seq < 0:
            raise ValidationError("stream_id and seq must be non-negative")
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 2 or values.shape[1] != len(self.attributes):
            raise ValidationError(
                f"window values must be (w, {len(self.attributes)}), "
                f"got shape {values.shape}"
            )
        if self.truth is not None and self.truth.shape != values.shape:
            raise ValidationError(
                f"truth shape {self.truth.shape} does not match values "
                f"{values.shape}"
            )

    @property
    def width(self) -> int:
        """Number of time steps in this window."""
        return int(np.asarray(self.values).shape[0])

    @property
    def key(self) -> tuple[int, int]:
        """The dedup identity ``(stream_id, seq)``."""
        return (self.stream_id, self.seq)


def cut_series_windows(
    series: TimeSeries, stream_id: int, width: int
) -> list[StreamWindow]:
    """Cut one series into its in-order :class:`StreamWindow` sequence.

    Windows are consecutive ``[a, a + width)`` slices of the time axis (the
    last one ragged), copied so a window never pins its source series. The
    cut is the exact inverse of seq-order concatenation: stacking the
    returned windows' values reproduces ``series.values`` bit for bit, which
    is what makes push-delivered streams reassemblable into the batch
    engine's inputs.
    """
    check_positive_int(width, "width")
    windows: list[StreamWindow] = []
    values = series.values
    truth = series.truth
    for seq, a in enumerate(range(0, series.length, width)):
        chunk = values[a : a + width]
        windows.append(
            StreamWindow(
                stream_id=stream_id,
                seq=seq,
                values=chunk.copy(),
                attributes=series.attributes,
                node=series.node,
                truth=None if truth is None else truth[a : a + width].copy(),
            )
        )
    if not windows:
        windows.append(
            StreamWindow(
                stream_id=stream_id,
                seq=0,
                values=values[:0].copy(),
                attributes=series.attributes,
                node=series.node,
                truth=None if truth is None else truth[:0].copy(),
            )
        )
    return windows


@dataclass(frozen=True)
class WindowShard:
    """Picklable work unit: consume the windows of one time-axis chunk.

    ``values`` holds the stream rows ``[lo, stop)`` where ``lo`` is the chunk
    start minus the window overlap — everything the chunk's histories can
    reach, and nothing more. ``fn(t, history)`` must be picklable (a
    module-level callable) for the process backend.
    """

    fn: Callable[[int, np.ndarray], object]
    values: np.ndarray
    window: int
    start: int
    stop: int
    lo: int


def ingest_window_shard(unit: WindowShard) -> list:
    """Apply the consumer to every time step of one :class:`WindowShard`."""
    return [
        unit.fn(t, unit.values[max(0, t - unit.window) - unit.lo : t - unit.lo])
        for t in range(unit.start, unit.stop)
    ]


class WindowHistory:
    """Sliding ``w``-step history view over a :class:`TimeSeries`.

    ``history(t)`` returns the rows for times ``t-w .. t-1`` (clipped at the
    start of the stream), i.e. the information set available *before*
    observing ``X^t``.
    """

    def __init__(self, series: TimeSeries, window: int):
        self.series = series
        self.window = check_positive_int(window, "window")

    def history(self, t: int) -> np.ndarray:
        """Rows of the stream in ``[max(0, t-w), t)``; empty at ``t == 0``."""
        if not 0 <= t <= self.series.length:
            raise IndexError(f"t={t} outside [0, {self.series.length}]")
        start = max(0, t - self.window)
        return self.series.values[start:t]

    def history_column(self, t: int, attribute: str) -> np.ndarray:
        """Windowed history of a single attribute."""
        j = self.series.attribute_index(attribute)
        return self.history(t)[:, j]

    def iter_windows(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(t, history_rows)`` for ``t`` in ``[start, stop)``.

        With the defaults this covers the whole stream; bounded calls walk
        one shard of the time axis (each step still sees its full ``w``-step
        history — shard boundaries never truncate the window).
        """
        stop = self.series.length if stop is None else stop
        if not 0 <= start <= stop <= self.series.length:
            raise ValidationError(
                f"bad window range [{start}, {stop}) for length {self.series.length}"
            )
        for t in range(start, stop):
            yield t, self.history(t)

    def shard_bounds(self, shard_size: Optional[int] = None) -> list[tuple[int, int]]:
        """Contiguous ``(start, stop)`` chunks covering the time axis.

        The layout comes from :func:`repro.core.pipeline.plan_shards`
        (``REPRO_SHARD_SIZE`` applies) and is a pure scheduling choice.
        """
        from repro.core.pipeline import plan_shards

        return plan_shards(self.series.length, shard_size)

    def map_windows(
        self,
        fn: Callable[[int, np.ndarray], object],
        backend=None,
        shard_size: Optional[int] = None,
    ) -> list:
        """``[fn(t, history(t)) for t]`` fanned across an execution backend.

        The streaming analogue of :meth:`iter_windows`: the time axis is cut
        into :meth:`shard_bounds` chunks and each :class:`WindowShard` ships
        only its rows plus the ``w``-step overlap. *fn* must be pure and
        picklable; results come back in time order on every backend.
        """
        from repro.core.pipeline import Pipeline

        pipeline = Pipeline.coerce(backend, shard_size=shard_size)
        values = self.series.values
        units = []
        for start, stop in self.shard_bounds(pipeline.shard_size):
            lo = max(0, start - self.window)
            units.append(
                WindowShard(
                    fn=fn,
                    values=values[lo:stop],
                    window=self.window,
                    start=start,
                    stop=stop,
                    lo=lo,
                )
            )
        results: list = []
        for chunk in pipeline.backend.map(ingest_window_shard, units):
            results.extend(chunk)
        return results
