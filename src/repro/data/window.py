"""Windowed history ``F_t^w`` over a data stream.

Section 3.1: "In the data stream context, it is often infeasible to store all
the data. ... In this paper we restrict ourselves to the currently available
window F_t^w, the w time-step history up to time t-1."

:class:`WindowHistory` provides exactly that view for the windowed outlier
detector, without copying the underlying series. Ingestion is shard-aware:
:meth:`WindowHistory.iter_windows` walks any contiguous chunk of the time
axis, :meth:`WindowHistory.shard_bounds` plans the chunk layout, and
:meth:`WindowHistory.map_windows` fans a per-step consumer across those
chunks on an :class:`~repro.core.executor.ExecutionBackend` — each work unit
carries only its slice of the stream plus the ``w``-step overlap it needs,
so a process worker ingests its shard without ever holding the full series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Optional

import numpy as np

from repro.data.stream import TimeSeries
from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> cleaning -> data)
    from repro.core.pipeline import Pipeline

__all__ = ["WindowHistory", "WindowShard", "ingest_window_shard"]


@dataclass(frozen=True)
class WindowShard:
    """Picklable work unit: consume the windows of one time-axis chunk.

    ``values`` holds the stream rows ``[lo, stop)`` where ``lo`` is the chunk
    start minus the window overlap — everything the chunk's histories can
    reach, and nothing more. ``fn(t, history)`` must be picklable (a
    module-level callable) for the process backend.
    """

    fn: Callable[[int, np.ndarray], object]
    values: np.ndarray
    window: int
    start: int
    stop: int
    lo: int


def ingest_window_shard(unit: WindowShard) -> list:
    """Apply the consumer to every time step of one :class:`WindowShard`."""
    return [
        unit.fn(t, unit.values[max(0, t - unit.window) - unit.lo : t - unit.lo])
        for t in range(unit.start, unit.stop)
    ]


class WindowHistory:
    """Sliding ``w``-step history view over a :class:`TimeSeries`.

    ``history(t)`` returns the rows for times ``t-w .. t-1`` (clipped at the
    start of the stream), i.e. the information set available *before*
    observing ``X^t``.
    """

    def __init__(self, series: TimeSeries, window: int):
        self.series = series
        self.window = check_positive_int(window, "window")

    def history(self, t: int) -> np.ndarray:
        """Rows of the stream in ``[max(0, t-w), t)``; empty at ``t == 0``."""
        if not 0 <= t <= self.series.length:
            raise IndexError(f"t={t} outside [0, {self.series.length}]")
        start = max(0, t - self.window)
        return self.series.values[start:t]

    def history_column(self, t: int, attribute: str) -> np.ndarray:
        """Windowed history of a single attribute."""
        j = self.series.attribute_index(attribute)
        return self.history(t)[:, j]

    def iter_windows(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(t, history_rows)`` for ``t`` in ``[start, stop)``.

        With the defaults this covers the whole stream; bounded calls walk
        one shard of the time axis (each step still sees its full ``w``-step
        history — shard boundaries never truncate the window).
        """
        stop = self.series.length if stop is None else stop
        if not 0 <= start <= stop <= self.series.length:
            raise ValidationError(
                f"bad window range [{start}, {stop}) for length {self.series.length}"
            )
        for t in range(start, stop):
            yield t, self.history(t)

    def shard_bounds(self, shard_size: Optional[int] = None) -> list[tuple[int, int]]:
        """Contiguous ``(start, stop)`` chunks covering the time axis.

        The layout comes from :func:`repro.core.pipeline.plan_shards`
        (``REPRO_SHARD_SIZE`` applies) and is a pure scheduling choice.
        """
        from repro.core.pipeline import plan_shards

        return plan_shards(self.series.length, shard_size)

    def map_windows(
        self,
        fn: Callable[[int, np.ndarray], object],
        backend=None,
        shard_size: Optional[int] = None,
    ) -> list:
        """``[fn(t, history(t)) for t]`` fanned across an execution backend.

        The streaming analogue of :meth:`iter_windows`: the time axis is cut
        into :meth:`shard_bounds` chunks and each :class:`WindowShard` ships
        only its rows plus the ``w``-step overlap. *fn* must be pure and
        picklable; results come back in time order on every backend.
        """
        from repro.core.pipeline import Pipeline

        pipeline = Pipeline.coerce(backend, shard_size=shard_size)
        values = self.series.values
        units = []
        for start, stop in self.shard_bounds(pipeline.shard_size):
            lo = max(0, start - self.window)
            units.append(
                WindowShard(
                    fn=fn,
                    values=values[lo:stop],
                    window=self.window,
                    start=start,
                    stop=stop,
                    lo=lo,
                )
            )
        results: list = []
        for chunk in pipeline.backend.map(ingest_window_shard, units):
            results.extend(chunk)
        return results
