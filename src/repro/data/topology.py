"""Three-level network hierarchy: RNC -> cell tower -> sector.

Section 3.1 of the paper: "Let Ni, Nij, Nijk represent nodes in successive
layers of a network ... Ni could represent the Radio Network Controller (RNC),
Nij a cell tower (Node B) reporting to that RNC, and Nijk an individual
antenna (sector) on that particular cell tower."

The topology matters for two things in this reproduction:

* **neighbour-aware outlier detection** — the detector ``f_O`` may condition
  on the window history of a node's neighbours (Section 3.3); sectors on the
  same tower are natural neighbours;
* **topology-preserving sampling** — flagged as future work in the paper
  (Section 6.1) and provided here as an extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import networkx as nx

from repro.errors import TopologyError
from repro.utils.validation import check_positive_int

__all__ = ["NodeId", "NetworkTopology"]


@dataclass(frozen=True, order=True)
class NodeId:
    """Identifier of a sector node ``N_ijk`` in the hierarchy.

    ``rnc`` indexes the RNC (``i``), ``tower`` the cell tower within that RNC
    (``j``), and ``sector`` the antenna within the tower (``k``).
    """

    rnc: int
    tower: int
    sector: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"N{self.rnc}.{self.tower}.{self.sector}"

    @property
    def tower_key(self) -> tuple[int, int]:
        """The ``(rnc, tower)`` pair identifying this sector's parent tower."""
        return (self.rnc, self.tower)


class NetworkTopology:
    """A regular three-level hierarchy with neighbour lookup.

    Parameters
    ----------
    n_rnc, towers_per_rnc, sectors_per_tower:
        Shape of the hierarchy. The paper's data cover 20,000 sectors; the
        default used by :class:`repro.data.generator.NetworkDataGenerator`
        scales this down but keeps the three levels.
    """

    def __init__(self, n_rnc: int, towers_per_rnc: int, sectors_per_tower: int):
        self.n_rnc = check_positive_int(n_rnc, "n_rnc")
        self.towers_per_rnc = check_positive_int(towers_per_rnc, "towers_per_rnc")
        self.sectors_per_tower = check_positive_int(sectors_per_tower, "sectors_per_tower")
        self._nodes = [
            NodeId(i, j, k)
            for i in range(self.n_rnc)
            for j in range(self.towers_per_rnc)
            for k in range(self.sectors_per_tower)
        ]
        self._node_set = set(self._nodes)

    # -- basic container behaviour ------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._node_set

    @property
    def nodes(self) -> list[NodeId]:
        """All sector nodes in deterministic (rnc, tower, sector) order."""
        return list(self._nodes)

    @property
    def n_sectors(self) -> int:
        """Total number of leaf (sector) nodes."""
        return len(self._nodes)

    # -- hierarchy queries ---------------------------------------------------------

    def _require(self, node: NodeId) -> None:
        if node not in self._node_set:
            raise TopologyError(f"unknown node {node}")

    def tower_of(self, node: NodeId) -> tuple[int, int]:
        """Parent tower key ``(rnc, tower)`` of a sector."""
        self._require(node)
        return node.tower_key

    def sectors_of_tower(self, rnc: int, tower: int) -> list[NodeId]:
        """All sectors on one tower."""
        if not (0 <= rnc < self.n_rnc and 0 <= tower < self.towers_per_rnc):
            raise TopologyError(f"unknown tower ({rnc}, {tower})")
        return [NodeId(rnc, tower, k) for k in range(self.sectors_per_tower)]

    def sectors_of_rnc(self, rnc: int) -> list[NodeId]:
        """All sectors under one RNC."""
        if not 0 <= rnc < self.n_rnc:
            raise TopologyError(f"unknown RNC {rnc}")
        return [
            NodeId(rnc, j, k)
            for j in range(self.towers_per_rnc)
            for k in range(self.sectors_per_tower)
        ]

    def neighbors(self, node: NodeId) -> list[NodeId]:
        """Sibling sectors on the same tower (the node itself excluded).

        These are the neighbours ``N`` whose window history ``X^{F_t^w}_N``
        feeds the neighbour-aware outlier detector of Section 3.3: glitches
        cluster topologically "because they are often driven by physical
        phenomena related to collocated equipment like antennae on a cell
        tower" (Section 6.1).
        """
        self._require(node)
        return [
            NodeId(node.rnc, node.tower, k)
            for k in range(self.sectors_per_tower)
            if k != node.sector
        ]

    # -- graph view ------------------------------------------------------------------

    def to_graph(self) -> nx.Graph:
        """Materialise the hierarchy as a networkx graph.

        Levels are encoded in the ``level`` node attribute (``"core"``,
        ``"rnc"``, ``"tower"``, ``"sector"``); tree edges connect each node
        to its parent, with a single core node above the RNCs so the graph is
        one connected tree. Useful for topology-aware sampling experiments.
        """
        graph = nx.Graph()
        graph.add_node(("core",), level="core")
        for i in range(self.n_rnc):
            graph.add_node(("rnc", i), level="rnc")
            graph.add_edge(("core",), ("rnc", i))
            for j in range(self.towers_per_rnc):
                graph.add_node(("tower", i, j), level="tower")
                graph.add_edge(("rnc", i), ("tower", i, j))
                for k in range(self.sectors_per_tower):
                    graph.add_node(NodeId(i, j, k), level="sector")
                    graph.add_edge(("tower", i, j), NodeId(i, j, k))
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkTopology(n_rnc={self.n_rnc}, towers_per_rnc={self.towers_per_rnc}, "
            f"sectors_per_tower={self.sectors_per_tower})"
        )
