"""Streaming slab feed — bounded, recomputable population chunks.

Section 3.1 frames the whole problem as a data-stream setting where "it is
often infeasible to store all the data". The materialised population build
(:func:`repro.experiments.config.build_population`) violates that premise on
purpose — it is the in-memory reference — and this module supplies the
out-of-core alternative the streaming engine runs on:

* :class:`SlabSource` is a **recipe** for one population shard: the node
  range, the per-series seed sequences of the generation and injection
  stages, and the centrally drawn event windows. A recipe is a few hundred
  bytes; materialising it (:func:`load_slab`) reproduces the shard's dirty
  series bit for bit, because every series is a pure function of its own
  pre-spawned stream — the same contract the sharded pipeline (PR 2) pins.
* A source can **spill**: the first materialisation writes the shard to one
  memory-mapped columnar file (:mod:`repro.store.shards`), and later passes
  stream it back as zero-copy views instead of recomputing — the classic
  out-of-core trade (disk for memory), with ``float64`` round-tripping
  exactly. Every shard file carries its recipe's fingerprint, and
  :func:`load_slab` refuses to serve a file whose fingerprint does not match
  the source in hand (a spill directory reused across configs or seeds
  regenerates and overwrites instead of silently serving the wrong
  population). A **disk budget** (``disk_budget=`` /
  ``REPRO_DISK_BUDGET``) bounds the store: over-budget shard files are
  evicted back to their seed recipes — free correctness-wise, because
  recipes round-trip bitwise.
* :class:`SlabFeed` plans the shard layout (reusing
  :class:`~repro.core.pipeline.Pipeline` / ``REPRO_SHARD_SIZE``), owns the
  spill directory, fans per-shard work across the execution backend, and
  serves **time-axis slabs**: bounded ``(n, w, v)`` :class:`SampleBlock`
  windows cut from each shard with the same ``w``-step overlap logic as
  :meth:`repro.data.window.WindowHistory.iter_windows`, appended into a
  bounded ring for windowed consumers.

Peak memory of any pass over a feed is O(one shard) + O(ring), never
O(population).
"""

from __future__ import annotations

import os
import tempfile
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.data.block import SampleBlock
from repro.data.generator import (
    GenerationShard,
    GeneratorConfig,
    NetworkDataGenerator,
    generate_shard,
)
from repro.data.glitch_injection import (
    GlitchInjectionConfig,
    InjectionShard,
    _event_windows,
    inject_shard,
)
from repro.data.stream import TimeSeries
from repro.data.topology import NodeId
from repro.errors import DataShapeError, StoreWarning, ValidationError
from repro.utils.rng import Seed, as_generator, snapshot_seed, spawn_sequences
from repro.utils.validation import check_positive_int

__all__ = [
    "DISK_BUDGET_ENV_VAR",
    "SlabSource",
    "TimeSlab",
    "SlabFeed",
    "load_slab",
]

#: Environment variable bounding the spill store, in bytes (unset = unlimited).
DISK_BUDGET_ENV_VAR = "REPRO_DISK_BUDGET"


@dataclass(frozen=True)
class SlabSource:
    """Recipe for one contiguous shard ``[start, stop)`` of a dirty population.

    Everything needed to reproduce the shard's series exactly, on any
    backend, in any order: the stage configs, the node identities, the
    per-series seed sequences of both stages, and the shared event-window
    mask (global state, drawn once centrally). ``store_path`` names the
    shard's spill file; when the file exists, :func:`load_slab` streams it
    back instead of recomputing.
    """

    index: int
    start: int
    stop: int
    nodes: tuple[NodeId, ...]
    gen_config: GeneratorConfig
    gen_seeds: tuple[np.random.SeedSequence, ...]
    inj_config: GlitchInjectionConfig
    inj_seeds: tuple[np.random.SeedSequence, ...]
    events: np.ndarray
    store_path: Optional[str] = None

    @property
    def n_series(self) -> int:
        """Number of series in the shard."""
        return self.stop - self.start


def _materialize(source: SlabSource) -> list[TimeSeries]:
    """Generate and glitch the shard's series from their seed recipes."""
    from repro.core.pipeline import ShardSpec

    gen_unit = GenerationShard(
        config=source.gen_config,
        nodes=source.nodes,
        shard=ShardSpec(
            index=source.index,
            start=source.start,
            stop=source.stop,
            seeds=source.gen_seeds,
        ),
    )
    clean = generate_shard(gen_unit)
    inj_unit = InjectionShard(
        config=source.inj_config,
        series=tuple(clean),
        events=source.events,
        shard=ShardSpec(
            index=source.index,
            start=source.start,
            stop=source.stop,
            seeds=source.inj_seeds,
        ),
    )
    return [dirty for dirty, _record in inject_shard(inj_unit)]


def _spill(source: SlabSource, series: Sequence[TimeSeries]) -> None:
    """Write the shard to its columnar spill file (atomic, fingerprinted;
    float64 round-trips exactly)."""
    from repro.store.shards import recipe_fingerprint, write_shard

    n_attrs = series[0].n_attributes if series else 0
    lengths = np.array([s.length for s in series], dtype=np.int64)
    values = (
        np.concatenate([s.values for s in series], axis=0)
        if series
        else np.empty((0, n_attrs))
    )
    truth = (
        np.concatenate([s.truth for s in series], axis=0)
        if series and all(s.truth is not None for s in series)
        else None
    )
    # The directory may have been cleaned up since planning (e.g. a second
    # run() of the same engine); spilling recreates it rather than crashing.
    os.makedirs(os.path.dirname(source.store_path), exist_ok=True)
    write_shard(
        source.store_path,
        lengths=lengths,
        values=values,
        truth=truth,
        fingerprint=recipe_fingerprint(source),
        attributes=series[0].attributes if series else (),
    )


def load_slab(source: SlabSource, spill: bool = False) -> list[TimeSeries]:
    """The shard's dirty series — from the spill store when present,
    regenerated from the seed recipes otherwise (bitwise-identical either
    way).

    A stored shard is served only after its header fingerprint matches the
    recipe in hand (:func:`repro.store.shards.recipe_fingerprint`): a stale
    or foreign file at ``store_path`` — a spill directory reused across
    configs or seeds, a legacy-format leftover, a torn write — is
    regenerated from the seed recipe and **overwritten**, never silently
    served. Store-backed series are zero-copy views into the shard's
    memory-mapped segments (read-only; consumers that mutate must copy, as
    the gather and cleaning paths already do).

    With ``spill=True`` a regenerated shard is written to its store path so
    later passes stream instead of recompute; workers spill their own
    disjoint files atomically, so the write needs no coordination.
    """
    from repro.errors import StoreError
    from repro.store.shards import read_shard, recipe_fingerprint

    stale = False
    stale_reason = ""
    if source.store_path and os.path.exists(source.store_path):
        try:
            handle = read_shard(source.store_path)
        except StoreError as exc:
            stale = True  # torn/legacy/corrupt file: fall back to the recipe
            stale_reason = f"unreadable ({exc})"
        else:
            if handle.fingerprint == recipe_fingerprint(source):
                return handle.series(source.nodes)
            stale = True  # right place, wrong population: regenerate
            stale_reason = "recipe fingerprint mismatch (stale or foreign population)"
    if stale:
        warnings.warn(
            f"regenerating slab {source.store_path!r} from its seed recipe: "
            f"{stale_reason}",
            StoreWarning,
            stacklevel=2,
        )
    series = _materialize(source)
    if source.store_path and (spill or stale):
        try:
            _spill(source, series)
        except (OSError, StoreError) as exc:
            # Non-fatal: the shard is already in memory, so the pass keeps
            # its numbers; only the disk cache is missing, which later
            # passes will regenerate (eviction pressure stays unrelieved).
            warnings.warn(
                f"could not spill slab {source.store_path!r} ({exc}); serving "
                "the shard from its in-memory seed recipe instead",
                StoreWarning,
                stacklevel=2,
            )
    return series


@dataclass(frozen=True)
class TimeSlab:
    """One bounded ``(n, w [+ overlap], v)`` window of a shard's series.

    ``block`` holds rows ``[lo, stop)`` of the time axis where
    ``lo = max(0, start - window)`` — each step in ``[start, stop)`` can see
    its full ``window``-step history, and nothing more is materialised
    (the :class:`~repro.data.window.WindowShard` overlap rule).
    ``series_start`` is the population index of the block's first row.
    """

    block: SampleBlock
    series_start: int
    start: int
    stop: int
    lo: int

    @property
    def width(self) -> int:
        """Number of *owned* time steps (excluding the history overlap)."""
        return self.stop - self.start


class SlabFeed:
    """Plans, materialises and streams one dirty population as bounded slabs.

    Parameters
    ----------
    generator_config, injection_config:
        The population recipe — the same configs
        :func:`~repro.experiments.config.build_population` takes.
    seed:
        Root seed; the feed derives its stage streams exactly as the
        materialised build does, so for equal ``(configs, seed)`` the fed
        series are bitwise-identical to the bundle's population.
    backend, n_workers, shard_size:
        Shard layout and execution backend, via
        :class:`~repro.core.pipeline.Pipeline` (``REPRO_BACKEND`` /
        ``REPRO_SHARD_SIZE`` apply). The layout is a pure performance knob.
    spill:
        Whether the first materialisation writes each shard to disk for
        later passes (default True). ``spill_dir`` pins the location; by
        default a private temp directory is created and removed by
        :meth:`cleanup` / the context manager.
    disk_budget:
        Spill-store bound in bytes (``None`` defers to the
        ``REPRO_DISK_BUDGET`` environment variable, unset = unlimited).
        After each streamed pass, over-budget shard files are evicted —
        oldest first — back to their seed recipes (:meth:`evict`); a later
        pass regenerates them bitwise, so the budget trades compute for
        disk and never changes a number.
    ring_capacity:
        Bound of the time-slab ring (:attr:`ring`).
    """

    def __init__(
        self,
        generator_config: Optional[GeneratorConfig] = None,
        injection_config: Optional[GlitchInjectionConfig] = None,
        seed: Seed = 0,
        backend: Optional[object] = None,
        n_workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        spill: bool = True,
        spill_dir: Optional[str] = None,
        disk_budget: Optional[int] = None,
        ring_capacity: int = 4,
    ):
        from repro.core.pipeline import Pipeline

        if isinstance(seed, np.random.Generator):
            raise ValidationError(
                "SlabFeed needs a replayable seed (int or SeedSequence); a "
                "live Generator cannot be re-derived across passes"
            )
        self.gen_config = generator_config or GeneratorConfig()
        self.inj_config = injection_config or GlitchInjectionConfig()
        # Snapshot: a SeedSequence's spawn counter mutates on use, and the
        # feed must derive the same stage streams an unspawned sequence
        # would, no matter what the caller spawned from it before.
        self.seed = snapshot_seed(seed)
        self.pipeline = Pipeline.coerce(
            backend, n_workers=n_workers, shard_size=shard_size
        )
        self.ring_capacity = check_positive_int(ring_capacity, "ring_capacity")
        self.ring: deque[TimeSlab] = deque(maxlen=self.ring_capacity)
        self._owns_spill_dir = spill and spill_dir is None
        self.spill_dir = (
            (spill_dir or tempfile.mkdtemp(prefix="repro-slabs-")) if spill else None
        )
        if disk_budget is None:
            env = os.environ.get(DISK_BUDGET_ENV_VAR, "").strip()
            if env:
                disk_budget = int(env)
        if disk_budget is not None and disk_budget < 0:
            raise ValidationError(
                f"disk_budget must be >= 0 bytes, got {disk_budget}"
            )
        self.disk_budget = disk_budget
        self.n_evicted = 0
        self._plan()

    # -- planning ---------------------------------------------------------------

    def _plan(self) -> None:
        # Stage streams derived exactly like build_population: one child per
        # stage from the root seed, then per-series children by index.
        gen_seq, inject_seq = spawn_sequences(as_generator(self.seed), 2)
        generator = NetworkDataGenerator(self.gen_config, seed=gen_seq)
        shards, _stage = generator.generate_shards(self.pipeline)
        nodes = generator.topology.nodes
        self.n_series = len(nodes)

        cfg = self.gen_config
        if cfg.min_length == cfg.series_length:
            self.lengths = np.full(self.n_series, cfg.series_length, dtype=np.int64)
        else:
            # A series' length is the first draw of its own stream; reading
            # it from a fresh generator consumes nothing the real
            # materialisation will miss (SeedSequences only mutate on spawn).
            self.lengths = np.array(
                [
                    int(
                        np.random.default_rng(seq).integers(
                            cfg.min_length, cfg.series_length + 1
                        )
                    )
                    for shard in shards
                    for seq in shard.seeds
                ],
                dtype=np.int64,
            )
        self.max_length = int(self.lengths.max())
        self.uniform = bool((self.lengths == self.lengths[0]).all())

        # Injection global state and per-series streams, exactly as
        # GlitchInjector.inject_shards derives them.
        event_seq, series_root = spawn_sequences(as_generator(inject_seq), 2)
        events = _event_windows(
            self.inj_config, np.random.default_rng(event_seq), self.max_length
        )
        inj_seeds = spawn_sequences(series_root, self.n_series)

        self.sources: list[SlabSource] = [
            SlabSource(
                index=shard.index,
                start=shard.start,
                stop=shard.stop,
                nodes=tuple(nodes[shard.start : shard.stop]),
                gen_config=self.gen_config,
                gen_seeds=shard.seeds,
                inj_config=self.inj_config,
                inj_seeds=tuple(inj_seeds[shard.start : shard.stop]),
                events=events,
                store_path=(
                    os.path.join(self.spill_dir, f"slab-{shard.index:05d}.slab")
                    if self.spill_dir
                    else None
                ),
            )
            for shard in shards
        ]

    # -- fan-out ----------------------------------------------------------------

    def map(self, fn: Callable, items: Optional[Sequence] = None) -> list:
        """Evaluate *fn* over work items (default: the sources) on the
        feed's execution backend, preserving order. When a disk budget is
        set, over-budget shard files are evicted after the pass (between
        passes is the only safe point: no worker holds a tmp file open)."""
        out = self.pipeline.backend.map(
            fn, self.sources if items is None else items
        )
        if self.disk_budget is not None:
            self.evict()
        return out

    def iter_series(self, spill: bool = True) -> Iterator[tuple[SlabSource, list[TimeSeries]]]:
        """Serially yield ``(source, dirty series)`` per shard, one shard in
        memory at a time."""
        for source in self.sources:
            yield source, load_slab(source, spill=spill)
        if self.disk_budget is not None:
            self.evict()

    # -- time-axis slabs ---------------------------------------------------------

    def iter_time_slabs(
        self, width: int, window: int = 0, spill: bool = True
    ) -> Iterator[TimeSlab]:
        """Yield bounded ``(n, w, v)`` windows of every shard, in time order.

        Each shard is materialised once and cut along the time axis into
        slabs of *width* steps plus a *window*-step history overlap (the
        ``WindowHistory.iter_windows`` rule: a slab's first owned step still
        sees its full history; shard boundaries never truncate it). Every
        yielded slab is appended to the bounded :attr:`ring`, so windowed
        consumers can reach the most recent few without the feed ever
        holding more than one shard plus the ring. Requires a uniform
        series length (ragged shards cannot stack into one block).
        """
        width = check_positive_int(width, "width")
        if window < 0:
            raise ValidationError(f"window must be >= 0, got {window}")
        if not self.uniform:
            raise DataShapeError(
                "time slabs need a uniform series length; this population "
                "is ragged"
            )
        for source, series in self.iter_series(spill=spill):
            values = np.stack([s.values for s in series])
            truth = np.stack([s.truth for s in series])
            attributes = series[0].attributes
            nodes = tuple(s.node for s in series)
            indices = np.arange(source.start, source.stop, dtype=np.intp)
            length = values.shape[1]
            for start in range(0, length, width):
                stop = min(start + width, length)
                lo = max(0, start - window)
                # Copy the window: a view would keep the whole shard tensor
                # alive through the ring, silently growing the documented
                # O(ring) bound to O(ring_capacity x shard).
                slab = TimeSlab(
                    block=SampleBlock(
                        values=values[:, lo:stop].copy(),
                        attributes=attributes,
                        nodes=nodes,
                        truth=truth[:, lo:stop].copy(),
                        indices=indices,
                    ),
                    series_start=source.start,
                    start=start,
                    stop=stop,
                    lo=lo,
                )
                self.ring.append(slab)
                yield slab

    def iter_stream_windows(
        self, width: int, spill: bool = True
    ) -> "Iterator[StreamWindow]":
        """Yield every series' :class:`~repro.data.window.StreamWindow`
        sequence, shard by shard, in population and ``seq`` order.

        The feed→service bridge: each series is cut with
        :func:`~repro.data.window.cut_series_windows` (so seq-order
        concatenation reproduces it bitwise) and keyed by its population
        index, ready to be pushed at a
        :class:`~repro.service.session.MonitoringSession` — in this order,
        or any reordering/duplication of it. Works on ragged populations
        (the cut is per series; nothing is stacked).
        """
        from repro.data.window import cut_series_windows

        for source, series in self.iter_series(spill=spill):
            for offset, s in enumerate(series):
                yield from cut_series_windows(s, source.start + offset, width)

    # -- lifecycle ---------------------------------------------------------------

    def _shard_files(self) -> list[os.DirEntry]:
        """Completed shard files in the spill dir (tmp stragglers excluded)."""
        if not self.spill_dir or not os.path.isdir(self.spill_dir):
            return []
        with os.scandir(self.spill_dir) as it:
            return [
                entry
                for entry in it
                if entry.is_file() and ".tmp" not in entry.name
            ]

    def spilled_bytes(self) -> int:
        """Total size of the spill store on disk (0 when spilling is off).

        Counts only completed shard files: ``*.tmp*`` stragglers — the
        leftovers of a worker that died between writing its tmp file and
        publishing it with ``os.replace`` — are never part of the store and
        are excluded (and swept by :meth:`evict` / :meth:`cleanup`).
        """
        return sum(entry.stat().st_size for entry in self._shard_files())

    def sweep_tmp(self) -> int:
        """Remove orphan ``*.tmp*`` spill files; returns bytes freed.

        Only safe between passes — a live worker mid-spill holds its tmp
        file open, and :meth:`map` / :meth:`evict` / :meth:`cleanup` call
        this only from the coordinating process once a pass has completed.
        """
        if not self.spill_dir or not os.path.isdir(self.spill_dir):
            return 0
        freed = 0
        with os.scandir(self.spill_dir) as it:
            stragglers = [
                entry for entry in it if entry.is_file() and ".tmp" in entry.name
            ]
        for entry in stragglers:
            try:
                size = entry.stat().st_size
                os.unlink(entry.path)
                freed += size
            except OSError:  # pragma: no cover - raced by another sweeper
                continue
        return freed

    def evict(self, budget: Optional[int] = None) -> int:
        """Drop shard files back to their seed recipes until the store fits
        *budget* bytes (default: the feed's ``disk_budget``); returns bytes
        freed.

        Oldest files (by modification time) go first. Eviction is free
        correctness-wise — an evicted shard regenerates bitwise from its
        recipe on the next :func:`load_slab` — and also sweeps orphan
        ``*.tmp*`` stragglers, which never count toward the budget.
        """
        freed = self.sweep_tmp()
        if budget is None:
            budget = self.disk_budget
        if budget is None or not self.spill_dir:
            return freed
        entries = sorted(
            ((e.stat().st_mtime_ns, e.name, e.stat().st_size, e.path)
             for e in self._shard_files()),
        )
        total = sum(size for _, _, size, _ in entries)
        for _, _, size, path in entries:
            if total <= budget:
                break
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - raced by another evictor
                continue
            total -= size
            freed += size
            self.n_evicted += 1
        return freed

    def cleanup(self) -> None:
        """Remove the spill store if this feed owns it; sweep tmp stragglers
        out of an external (caller-owned) spill directory either way."""
        if self._owns_spill_dir and self.spill_dir and os.path.isdir(self.spill_dir):
            import shutil

            shutil.rmtree(self.spill_dir, ignore_errors=True)
        else:
            self.sweep_tmp()

    def __enter__(self) -> "SlabFeed":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlabFeed(n_series={self.n_series}, shards={len(self.sources)}, "
            f"uniform={self.uniform}, spill={'on' if self.spill_dir else 'off'})"
        )
