"""Glitch injection: layering missing values, inconsistencies and anomalies
onto clean streams.

The paper observes (Section 4.1 / Figure 3 / Table 1) a glitch mix with:

* roughly 15-16% of records carrying missing values,
* roughly 15-16% carrying inconsistencies, **heavily overlapping** with the
  missing values — partly *by construction*, since inconsistency constraint 3
  ("Attribute 1 should not be populated if Attribute 3 is missing") fires on
  records where the outage hit Attribute 3 but not Attribute 1,
* outliers whose detected rate depends on the measurement scale: ~5% of
  records on the raw scale vs ~17% after the log transform of Attribute 1
  (Table 1), because low-side anomalies ("dips") are invisible inside the
  huge raw-scale sigma but stick out on the log scale,
* temporal clustering (bursts) and network-wide events driven by shared
  physical causes (Section 6.1).

:class:`GlitchInjector` reproduces all four properties with explicit,
documented knobs. Injection is *truth-preserving*: each dirty series keeps the
pre-glitch values in ``TimeSeries.truth`` and the injector returns per-series
masks of exactly what it did, enabling detector-accuracy tests and oracle
("re-measure") cleaning strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.data.dataset import StreamDataset
from repro.data.stream import TimeSeries
from repro.data.topology import NodeId
from repro.errors import ValidationError
from repro.utils.rng import Seed, as_generator, spawn_sequences
from repro.utils.validation import check_probability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> cleaning -> data)
    from repro.core.pipeline import Pipeline, ShardSpec, ShardedStage

__all__ = [
    "GlitchInjectionConfig",
    "SeriesInjection",
    "InjectionResult",
    "InjectionShard",
    "inject_shard",
    "GlitchInjector",
]


@dataclass(frozen=True)
class GlitchInjectionConfig:
    """Knobs of the glitch model. Probabilities are per-record unless noted.

    The defaults are calibrated (see ``tests/test_calibration.py``) so the
    *dirty partition* of a generated population matches the paper's Table 1
    glitch mix to within a few percentage points.
    """

    #: Fraction of series that are "glitchy"; the remainder stay near-clean
    #: and form the pool from which the ideal data set DI is drawn.
    glitchy_fraction: float = 0.65
    #: Log-normal sigma of the per-series glitch-intensity multiplier.
    intensity_sigma: float = 0.70
    #: Glitch-rate multiplier applied to healthy (non-glitchy) series.
    healthy_scale: float = 0.04

    # -- missing-value outages (two-state Markov bursts on attribute 3) -------
    #: Probability of entering an outage at each step outside one.
    outage_enter: float = 0.023
    #: Probability of leaving an outage at each step inside one.
    outage_exit: float = 0.175
    #: Probability that attribute 1 (resp. 2) is also lost during an outage
    #: record. Records where attr3 is lost but attr1 survives violate
    #: constraint 3 and are the built-in missing/inconsistent overlap.
    attr1_loss_in_outage: float = 0.45
    attr2_loss_in_outage: float = 0.70
    #: Isolated (non-burst) per-cell missingness.
    isolated_missing: float = 0.004

    # -- inconsistencies (constraint-violating values) -------------------------
    #: Per-record probability of a negative attribute-1 value (constraint 1).
    negative_attr1: float = 0.045
    #: Per-record probability of an out-of-range attribute-3 value
    #: (constraint 2); split between > 1 and < 0 violations.
    attr3_out_of_range: float = 0.045
    attr3_above_one_share: float = 0.7

    # -- anomalies (value-level outliers, injected in short bursts) -----------
    #: Burst dynamics for anomalies on attribute 1 (and, coupled, attribute 2).
    anomaly_enter: float = 0.095
    anomaly_exit: float = 0.50
    #: Share of anomaly bursts that are dips (low-side). Dips are invisible
    #: to raw-scale 3-sigma limits but glaring on the log scale — the
    #: mechanism behind Table 1's 5% vs 17% outlier rates. Spikes are an
    #: order of magnitude above the bulk (the paper's Figure 4a shows
    #: winsorized values ~10x the data bulk), so they grossly inflate the
    #: variance of any Gaussian fitted to the raw scale.
    dip_share: float = 0.93
    spike_factor_range: tuple[float, float] = (8.0, 25.0)
    dip_factor_range: tuple[float, float] = (0.02, 0.09)
    #: Probability that an attr1 anomaly also hits attr2.
    attr2_coupling: float = 0.5
    #: Glitches co-occur (Section 3.2): during an outage record whose attr1
    #: (resp. attr2) survives, the surviving value is stressed — multiplied
    #: by a draw from ``stress_factor_range`` — with this probability.
    #: Stressed records are *incomplete* (attr3 is missing), so they never
    #: enter the pooled complete-row distribution, yet they are fully
    #: visible to a multivariate-normal fit on the incomplete data: they are
    #: what blows up the PROC-MI analogue's variance estimates (Figure 4a's
    #: negative imputations; Figure 5's out-of-range Attribute 3).
    outage_stress: float = 0.45
    stress_factor_range: tuple[float, float] = (8.0, 20.0)
    #: Share of outage records that are "counter faults" instead: attr1 and
    #: attr2 are lost while attr3 survives — crashed to ``ratio_crash_range``.
    #: Like stressed records these are incomplete, so the crashed ratios are
    #: invisible to the complete-row distribution but poison the Gaussian
    #: fit of Attribute 3 (whose bulk hugs 1), which is what spreads the
    #: paper's Figure 5 imputations over the whole range including > 1.
    outage_ratio_crash: float = 0.22
    ratio_crash_range: tuple[float, float] = (0.60, 0.95)
    #: Per-record probability of an attribute-3 crash (ratio drops far below
    #: its bulk), detectable on either scale.
    attr3_crash: float = 0.006
    attr3_crash_range: tuple[float, float] = (0.0, 0.45)

    # -- network-wide events (Figure 3's synchronized glitch surges) ----------
    #: Number of network-wide event windows per generated population.
    n_events: int = 3
    event_length_range: tuple[int, int] = (6, 18)
    #: Additive per-record outage/anomaly probability during an event.
    event_outage_boost: float = 0.25
    event_anomaly_boost: float = 0.10

    def __post_init__(self) -> None:
        for name in (
            "glitchy_fraction",
            "healthy_scale",
            "outage_enter",
            "outage_exit",
            "attr1_loss_in_outage",
            "attr2_loss_in_outage",
            "isolated_missing",
            "negative_attr1",
            "attr3_out_of_range",
            "attr3_above_one_share",
            "anomaly_enter",
            "anomaly_exit",
            "dip_share",
            "attr2_coupling",
            "outage_stress",
            "outage_ratio_crash",
            "attr3_crash",
            "event_outage_boost",
            "event_anomaly_boost",
        ):
            check_probability(getattr(self, name), name)
        if self.intensity_sigma < 0:
            raise ValidationError("intensity_sigma must be >= 0")
        if self.n_events < 0:
            raise ValidationError("n_events must be >= 0")
        lo, hi = self.event_length_range
        if not (1 <= lo <= hi):
            raise ValidationError("event_length_range must satisfy 1 <= lo <= hi")
        for rng_name in (
            "spike_factor_range",
            "dip_factor_range",
            "stress_factor_range",
            "ratio_crash_range",
            "attr3_crash_range",
        ):
            lo_f, hi_f = getattr(self, rng_name)
            if not (0 <= lo_f <= hi_f):
                raise ValidationError(f"{rng_name} must satisfy 0 <= lo <= hi")


@dataclass
class SeriesInjection:
    """Record of what the injector did to one series.

    All masks are ``(T, v)`` boolean arrays on the dirty series' shape.
    """

    node: NodeId
    glitchy: bool
    missing_mask: np.ndarray
    corruption_mask: np.ndarray
    anomaly_mask: np.ndarray

    @property
    def any_glitch_mask(self) -> np.ndarray:
        """Cells touched by any injected glitch."""
        return self.missing_mask | self.corruption_mask | self.anomaly_mask


@dataclass
class InjectionResult:
    """Dirty data set plus the per-series injection ledger."""

    dataset: StreamDataset
    records: list[SeriesInjection] = field(default_factory=list)

    @property
    def glitchy_indices(self) -> list[int]:
        """Indices of series the injector treated as glitchy."""
        return [i for i, r in enumerate(self.records) if r.glitchy]

    @property
    def healthy_indices(self) -> list[int]:
        """Indices of series the injector treated as healthy."""
        return [i for i, r in enumerate(self.records) if not r.glitchy]

    def injected_missing_fraction(self) -> float:
        """Fraction of cells turned missing across the population."""
        total = sum(r.missing_mask.size for r in self.records)
        hits = sum(int(r.missing_mask.sum()) for r in self.records)
        return hits / total if total else 0.0


def _burst_mask(
    rng: np.random.Generator, length: int, p_enter: float, p_exit: float
) -> np.ndarray:
    """Boolean mask of a two-state Markov (burst) process of given length.

    Sampled via geometric gap/burst lengths, which is equivalent to stepping
    the chain but O(#bursts) instead of O(T).
    """
    mask = np.zeros(length, dtype=bool)
    if p_enter <= 0 or length == 0:
        return mask
    p_exit = max(p_exit, 1e-9)
    pos = int(rng.geometric(p_enter)) - 1
    while pos < length:
        burst = int(rng.geometric(p_exit))
        mask[pos : pos + burst] = True
        pos += burst + int(rng.geometric(p_enter))
    return mask


@dataclass(frozen=True)
class InjectionShard:
    """Picklable work unit: glitch one contiguous range of clean series.

    ``events`` is the network-wide event mask — global state drawn once,
    centrally, from its own stream before the fan-out; ``shard.seeds[i]`` is
    the pre-spawned stream of series ``series[i]``, so shards glitch their
    disjoint row ranges independently and identically on every backend.
    """

    config: GlitchInjectionConfig
    series: tuple[TimeSeries, ...]
    events: np.ndarray
    shard: ShardSpec


def inject_shard(unit: InjectionShard) -> list[tuple[TimeSeries, SeriesInjection]]:
    """Glitch the series of one :class:`InjectionShard`."""
    return [
        _inject_one(unit.config, series, np.random.default_rng(seq), unit.events)
        for series, seq in zip(unit.series, unit.shard.seeds)
    ]


def _inject_one(
    cfg: GlitchInjectionConfig,
    series: TimeSeries,
    rng: np.random.Generator,
    events: np.ndarray,
) -> tuple[TimeSeries, SeriesInjection]:
    """Glitch one series from its own random stream."""
    glitchy = bool(rng.random() < cfg.glitchy_fraction)
    # Mean-one log-normal multiplier: heterogeneity across series without
    # shifting the population glitch rates.
    scale = (
        float(
            np.exp(
                rng.normal(0.0, cfg.intensity_sigma) - 0.5 * cfg.intensity_sigma**2
            )
        )
        if glitchy
        else cfg.healthy_scale
    )
    return _inject_series(cfg, rng, series, scale, glitchy, events)


class GlitchInjector:
    """Applies the glitch model to a clean :class:`StreamDataset`.

    Injection is shard-parallel: the network-wide event windows are drawn
    once from a dedicated stream, then every series is glitched from its own
    stream pre-spawned from the injector seed by series index — so for a
    given seed the dirty population is identical whether :meth:`inject` runs
    serially or fans :class:`InjectionShard` units across a backend.
    """

    def __init__(self, config: GlitchInjectionConfig | None = None, seed: Seed = None):
        self.config = config or GlitchInjectionConfig()
        self._rng = as_generator(seed)

    def inject_shards(
        self, dataset: StreamDataset, pipeline: "Optional[Pipeline]" = None
    ) -> "tuple[list[ShardSpec], ShardedStage]":
        """Shard specs plus the injection stage over disjoint series ranges."""
        from repro.core.pipeline import Pipeline, ShardedStage

        pipeline = pipeline or Pipeline()
        cfg = self.config
        event_seq, series_root = spawn_sequences(self._rng, 2)
        events = _event_windows(
            cfg, np.random.default_rng(event_seq), dataset.max_length
        )
        series = dataset.series
        shards = pipeline.shards(len(series), seed=series_root)
        stage = ShardedStage(
            "inject",
            inject_shard,
            lambda s: InjectionShard(
                config=cfg,
                series=tuple(series[s.start : s.stop]),
                events=events,
                shard=s,
            ),
        )
        return shards, stage

    def inject(
        self,
        dataset: StreamDataset,
        backend=None,
        shard_size: Optional[int] = None,
    ) -> InjectionResult:
        """Return a dirty copy of *dataset* plus the injection ledger.

        ``backend`` selects the execution backend fanning the shards out (a
        name, an :class:`~repro.core.executor.ExecutionBackend`, or a
        :class:`~repro.core.pipeline.Pipeline`); the default is serial and
        every choice yields a bitwise-identical dirty population and ledger.
        """
        from repro.core.pipeline import Pipeline

        pipeline = Pipeline.coerce(backend, shard_size=shard_size)
        shards, stage = self.inject_shards(dataset, pipeline)
        chunks = pipeline.run_chunks(stage, shards)
        dirty = StreamDataset.from_shards(
            [dirty_s for dirty_s, _ in chunk] for chunk in chunks
        )
        records = [record for chunk in chunks for _, record in chunk]
        return InjectionResult(dirty, records)


# -- internals -------------------------------------------------------------------


def _event_windows(
    cfg: GlitchInjectionConfig, rng: np.random.Generator, max_len: int
) -> np.ndarray:
    """Network-wide event mask over the global time axis."""
    mask = np.zeros(max_len, dtype=bool)
    lo, hi = cfg.event_length_range
    for _ in range(cfg.n_events):
        length = int(rng.integers(lo, hi + 1))
        if length >= max_len:
            mask[:] = True
            continue
        start = int(rng.integers(0, max_len - length))
        mask[start : start + length] = True
    return mask


def _inject_series(
    cfg: GlitchInjectionConfig,
    rng: np.random.Generator,
    series: TimeSeries,
    scale: float,
    glitchy: bool,
    events: np.ndarray,
) -> tuple[TimeSeries, SeriesInjection]:
    values = series.values.copy()
    length, v = values.shape
    event_here = events[:length]
    sp = lambda p: min(1.0, p * scale)  # noqa: E731 - scaled probability

    anomaly_mask = np.zeros((length, v), dtype=bool)
    corruption_mask = np.zeros((length, v), dtype=bool)
    missing_mask = np.zeros((length, v), dtype=bool)

    j1, j2, j3 = 0, 1, 2  # attr1, attr2, attr3 columns

    # 1. anomalies (spikes/dips) -- corrupt values, detection comes later.
    burst = _burst_mask(rng, length, sp(cfg.anomaly_enter), cfg.anomaly_exit)
    burst |= event_here & (rng.random(length) < sp(cfg.event_anomaly_boost))
    starts = np.flatnonzero(burst & ~np.roll(burst, 1))
    if burst[0]:
        starts = np.union1d(starts, [0])
    # Label each burst with its own dip/spike decision so consecutive
    # records share a regime, as real equipment faults do.
    regime = np.zeros(length, dtype=bool)  # True = dip
    for s in starts:
        e = s
        while e < length and burst[e]:
            e += 1
        regime[s:e] = rng.random() < cfg.dip_share
    idx = np.flatnonzero(burst)
    for t in idx:
        if regime[t]:
            factor = rng.uniform(*cfg.dip_factor_range)
        else:
            factor = rng.uniform(*cfg.spike_factor_range)
        values[t, j1] *= factor
        anomaly_mask[t, j1] = True
        if rng.random() < cfg.attr2_coupling:
            values[t, j2] *= factor
            anomaly_mask[t, j2] = True

    crash = rng.random(length) < sp(cfg.attr3_crash)
    values[crash, j3] = rng.uniform(*cfg.attr3_crash_range, size=int(crash.sum()))
    anomaly_mask[:, j3] |= crash

    # 2. inconsistencies -- constraint-violating values.
    neg = rng.random(length) < sp(cfg.negative_attr1)
    values[neg, j1] = -np.abs(values[neg, j1]) * rng.uniform(
        0.05, 0.5, size=int(neg.sum())
    )
    corruption_mask[neg, j1] = True

    oor = rng.random(length) < sp(cfg.attr3_out_of_range)
    above = rng.random(length) < cfg.attr3_above_one_share
    hi_mask = oor & above
    lo_mask = oor & ~above
    values[hi_mask, j3] = 1.0 + rng.uniform(0.01, 0.08, size=int(hi_mask.sum()))
    values[lo_mask, j3] = -rng.uniform(0.01, 0.2, size=int(lo_mask.sum()))
    corruption_mask[:, j3] |= oor

    # 3. missing values -- outage bursts on attr3, partial loss of attr1/2.
    outage = _burst_mask(rng, length, sp(cfg.outage_enter), cfg.outage_exit)
    outage |= event_here & (rng.random(length) < sp(cfg.event_outage_boost))
    # Counter faults: a slice of outage records loses attr1/attr2 instead
    # of attr3, whose surviving value is a crashed ratio.
    counter_fault = outage & (rng.random(length) < cfg.outage_ratio_crash)
    ratio_outage = outage & ~counter_fault
    missing_mask[ratio_outage, j3] = True
    lost1 = ratio_outage & (rng.random(length) < cfg.attr1_loss_in_outage)
    lost2 = ratio_outage & (rng.random(length) < cfg.attr2_loss_in_outage)
    lost1 |= counter_fault
    lost2 |= counter_fault
    missing_mask[lost1, j1] = True
    missing_mask[lost2, j2] = True
    values[counter_fault, j3] = rng.uniform(
        *cfg.ratio_crash_range, size=int(counter_fault.sum())
    )
    anomaly_mask[counter_fault, j3] = True
    # Co-occurring stress: surviving attr1/attr2 values inside an outage
    # record are often extreme (the fault that caused the outage). These
    # records are incomplete, so the stress never reaches the pooled
    # complete-row distribution — but it does reach the MVN imputer.
    # One draw per record: the same fault stresses every surviving cell.
    stress_record = ratio_outage & (rng.random(length) < cfg.outage_stress)
    stressed1 = stress_record & ~lost1
    stressed2 = stress_record & ~lost2
    values[stressed1, j1] *= rng.uniform(
        *cfg.stress_factor_range, size=int(stressed1.sum())
    )
    values[stressed2, j2] *= rng.uniform(
        *cfg.stress_factor_range, size=int(stressed2.sum())
    )
    anomaly_mask[stressed1, j1] = True
    anomaly_mask[stressed2, j2] = True
    isolated = rng.random((length, v)) < sp(cfg.isolated_missing)
    missing_mask |= isolated
    values[missing_mask] = np.nan

    dirty = TimeSeries(series.node, values, series.attributes, truth=series.truth)
    record = SeriesInjection(
        node=series.node,
        glitchy=glitchy,
        missing_mask=missing_mask,
        corruption_mask=corruption_mask & ~missing_mask,
        anomaly_mask=anomaly_mask & ~missing_mask,
    )
    return dirty, record
