"""Time-series container for one network node.

Section 3.1: "At each node, we measure v variables in the form of a time
series or data stream. For network node Nijk, the data stream is represented
by a v x 1 vector X^t_ijk."

We store the full stream of one node as a ``(T, v)`` float array where NaN
means "not populated". When the series comes from the synthetic generator, the
pre-glitch ground truth is retained alongside so oracle strategies (Figure 2's
"re-take the measurements") and detector-accuracy tests are possible.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import DataShapeError
from repro.data.topology import NodeId

__all__ = ["TimeSeries", "DEFAULT_ATTRIBUTES"]

#: Attribute names used by the paper-scale experiments. Attribute 1 is a
#: heavy-tailed volume measure, Attribute 2 a mid-scale count, Attribute 3 a
#: ratio confined to [0, 1] (Section 4.1's constraints reference exactly this
#: structure).
DEFAULT_ATTRIBUTES = ("attr1", "attr2", "attr3")


class TimeSeries:
    """A multivariate time series measured at one node.

    Parameters
    ----------
    node:
        The :class:`~repro.data.topology.NodeId` that produced the stream.
    values:
        ``(T, v)`` float array; NaN marks missing ("not populated") entries.
    attributes:
        Names of the ``v`` attributes, defaults to :data:`DEFAULT_ATTRIBUTES`
        when ``v == 3``.
    truth:
        Optional ``(T, v)`` ground-truth array (no NaNs) recorded by the
        synthetic generator before glitch injection.
    """

    __slots__ = ("node", "values", "attributes", "truth")

    def __init__(
        self,
        node: NodeId,
        values: np.ndarray,
        attributes: Optional[Sequence[str]] = None,
        truth: Optional[np.ndarray] = None,
    ):
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise DataShapeError(f"values must be (T, v), got shape {values.shape}")
        if attributes is None:
            if values.shape[1] == len(DEFAULT_ATTRIBUTES):
                attributes = DEFAULT_ATTRIBUTES
            else:
                attributes = tuple(f"attr{i + 1}" for i in range(values.shape[1]))
        attributes = tuple(attributes)
        if len(attributes) != values.shape[1]:
            raise DataShapeError(
                f"got {len(attributes)} attribute names for {values.shape[1]} columns"
            )
        if truth is not None:
            truth = np.asarray(truth, dtype=float)
            if truth.shape != values.shape:
                raise DataShapeError(
                    f"truth shape {truth.shape} does not match values shape {values.shape}"
                )
        self.node = node
        self.values = values
        self.attributes = attributes
        self.truth = truth

    # -- shape ------------------------------------------------------------------

    @property
    def length(self) -> int:
        """Number of time steps ``T`` (``T_ijk`` in the paper's notation)."""
        return int(self.values.shape[0])

    @property
    def n_attributes(self) -> int:
        """Number of measured variables ``v``."""
        return int(self.values.shape[1])

    def __len__(self) -> int:
        return self.length

    # -- attribute access ---------------------------------------------------------

    def attribute_index(self, name: str) -> int:
        """Column index of attribute *name* (raises ``KeyError`` if absent)."""
        try:
            return self.attributes.index(name)
        except ValueError:
            raise KeyError(
                f"unknown attribute {name!r}; have {self.attributes}"
            ) from None

    def column(self, name: str) -> np.ndarray:
        """A **view** of one attribute's values over time."""
        return self.values[:, self.attribute_index(name)]

    # -- masks ------------------------------------------------------------------

    @property
    def missing_mask(self) -> np.ndarray:
        """Boolean ``(T, v)`` mask of not-populated entries."""
        return np.isnan(self.values)

    @property
    def missing_fraction(self) -> float:
        """Fraction of cells that are missing."""
        if self.values.size == 0:
            return 0.0
        return float(np.isnan(self.values).mean())

    # -- copies -------------------------------------------------------------------

    def copy(self) -> "TimeSeries":
        """Deep copy of values (truth is shared: it is never mutated)."""
        return TimeSeries(self.node, self.values.copy(), self.attributes, self.truth)

    def with_values(self, values: np.ndarray) -> "TimeSeries":
        """A new series on the same node/attributes with replaced values."""
        return TimeSeries(self.node, values, self.attributes, self.truth)

    def transformed(self, name: str, forward) -> "TimeSeries":
        """Apply an elementwise transform to one attribute, e.g. ``np.log``.

        The paper studies a natural-log transform of Attribute 1 as an
        experimental factor (Section 5.3). NaNs propagate; non-positive inputs
        to ``np.log`` become NaN with a suppressed warning (they are glitches
        by constraint 1 anyway).
        """
        out = self.values.copy()
        j = self.attribute_index(name)
        with np.errstate(invalid="ignore", divide="ignore"):
            col = forward(out[:, j])
        col = np.asarray(col, dtype=float)
        col[~np.isfinite(col)] = np.nan
        out[:, j] = col
        return TimeSeries(self.node, out, self.attributes, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimeSeries(node={self.node}, T={self.length}, v={self.n_attributes}, "
            f"missing={self.missing_fraction:.1%})"
        )
