"""Collections of time series — the data sets ``D``, ``DI``, ``Di`` etc.

A :class:`StreamDataset` is an ordered collection of
:class:`~repro.data.stream.TimeSeries` with a shared attribute schema. All
data sets in the experimental framework (the dirty data ``D``, the ideal data
``DI``, each replication sample ``Di`` and its cleaned counterpart ``DiC``)
are instances of this class.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.data.block import SampleBlock
from repro.data.stream import TimeSeries
from repro.errors import DataShapeError, ValidationError

__all__ = ["StreamDataset"]


class StreamDataset:
    """An ordered collection of multivariate time series.

    Parameters
    ----------
    series:
        The member time series. All must share the same attribute tuple;
        lengths may differ (``T_ijk`` varies with node uptime, Section 3.4).
    """

    def __init__(self, series: Iterable[TimeSeries]):
        self._series = list(series)
        if not self._series:
            raise ValidationError("StreamDataset needs at least one series")
        attrs = self._series[0].attributes
        for s in self._series[1:]:
            if s.attributes != attrs:
                raise DataShapeError(
                    f"inconsistent attributes: {s.attributes} vs {attrs}"
                )
        self.attributes = attrs

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(self._series)

    def __getitem__(self, index: int) -> TimeSeries:
        return self._series[index]

    @property
    def series(self) -> list[TimeSeries]:
        """The member series (list is a copy; elements are shared)."""
        return list(self._series)

    @property
    def n_attributes(self) -> int:
        """Number of attributes ``v`` shared by every series."""
        return len(self.attributes)

    @property
    def n_records(self) -> int:
        """Total number of ``(t, node)`` records across all series."""
        return int(sum(s.length for s in self._series))

    @property
    def max_length(self) -> int:
        """Length of the longest member series."""
        return max(s.length for s in self._series)

    # -- pooling --------------------------------------------------------------------

    def pooled(self, dropna: str = "none") -> np.ndarray:
        """Stack every time instant of every series into an ``(N, v)`` array.

        This realises the paper's distance computation: "while we sampled
        entire time series, we computed EMD treating each time instance as a
        separate data point" (Section 6.1).

        Parameters
        ----------
        dropna:
            ``"none"`` keeps all rows, ``"any"`` drops rows with any NaN
            (required before multivariate binning), ``"all"`` drops rows that
            are entirely NaN.
        """
        if dropna not in ("none", "any", "all"):
            raise ValidationError(f"dropna must be none/any/all, got {dropna!r}")
        stacked = np.concatenate([s.values for s in self._series], axis=0)
        if dropna == "any":
            return stacked[~np.isnan(stacked).any(axis=1)]
        if dropna == "all":
            return stacked[~np.isnan(stacked).all(axis=1)]
        return stacked

    def pooled_column(self, attribute: str, dropna: bool = True) -> np.ndarray:
        """Pool a single attribute across all series."""
        j = self._series[0].attribute_index(attribute)
        col = np.concatenate([s.values[:, j] for s in self._series])
        if dropna:
            return col[~np.isnan(col)]
        return col

    @property
    def missing_fraction(self) -> float:
        """Fraction of missing cells over the whole data set."""
        total = sum(s.values.size for s in self._series)
        if total == 0:
            return 0.0
        miss = sum(int(np.isnan(s.values).sum()) for s in self._series)
        return miss / total

    # -- derivation -----------------------------------------------------------------

    def copy(self) -> "StreamDataset":
        """Deep copy of all member series' values."""
        return StreamDataset(s.copy() for s in self._series)

    def subset(self, indices: Sequence[int]) -> "StreamDataset":
        """A new data set consisting of the series at *indices* (with repeats).

        Repeated indices are allowed — sampling with replacement produces
        exactly that (Section 2.1.1).
        """
        idx = list(indices)
        if not idx:
            raise ValidationError("subset needs at least one index")
        n = len(self._series)
        for i in idx:
            if not -n <= i < n:
                raise ValidationError(f"index {i} out of range for {n} series")
        return StreamDataset(self._series[i] for i in idx)

    def map(self, fn: Callable[[TimeSeries], TimeSeries]) -> "StreamDataset":
        """Apply *fn* to each member series, returning a new data set."""
        return StreamDataset(fn(s) for s in self._series)

    def transformed(self, attribute: str, forward) -> "StreamDataset":
        """Elementwise transform of one attribute across all series.

        Used for the log-transform experimental factor (Section 5.3).
        """
        return self.map(lambda s: s.transformed(attribute, forward))

    # -- columnar block layout -------------------------------------------------

    def to_block(self) -> SampleBlock:
        """This data set as one contiguous ``(n, T, v)`` sample block.

        Requires a uniform series length (``T_ijk`` equal for every member);
        ragged data sets raise :class:`~repro.errors.DataShapeError` and stay
        on the per-series path. The ground-truth tensor is included only when
        every member series carries one. Use :meth:`try_to_block` for the
        non-raising form.
        """
        lengths = {s.length for s in self._series}
        if len(lengths) != 1:
            raise DataShapeError(
                f"to_block needs a uniform series length, got lengths {sorted(lengths)}"
            )
        values = np.stack([s.values for s in self._series])
        truth = None
        if all(s.truth is not None for s in self._series):
            truth = np.stack([s.truth for s in self._series])
        return SampleBlock(
            values=values,
            attributes=self.attributes,
            nodes=tuple(s.node for s in self._series),
            truth=truth,
        )

    def try_to_block(self) -> Optional[SampleBlock]:
        """:meth:`to_block`, or ``None`` when the layout does not apply."""
        try:
            return self.to_block()
        except DataShapeError:
            return None

    @staticmethod
    def from_block(block: SampleBlock) -> "StreamDataset":
        """A data set of **zero-copy** series views into *block*.

        Each member's ``values`` (and ``truth``) array is a view of the block
        tensor: mutating a view mutates the block, and vice versa. Strategies
        never mutate their input, so sharing is safe throughout the library;
        copy the block first if the caller intends in-place edits.
        """
        return StreamDataset(
            TimeSeries(
                block.nodes[i],
                block.values[i],
                block.attributes,
                None if block.truth is None else block.truth[i],
            )
            for i in range(block.n_series)
        )

    @staticmethod
    def from_shards(chunks: Iterable[Iterable[TimeSeries]]) -> "StreamDataset":
        """Deterministic merge of per-shard series lists into one data set.

        *chunks* are the outputs of a sharded stage in shard order (shard
        ``k`` holds the series of index range ``[start_k, stop_k)``); the
        merge is plain ordered concatenation, so the result is identical to
        a serial pass regardless of shard layout or execution backend.
        """
        series: list[TimeSeries] = []
        for chunk in chunks:
            series.extend(chunk)
        return StreamDataset(series)

    @staticmethod
    def concat(datasets: Sequence["StreamDataset"]) -> "StreamDataset":
        """Concatenate several data sets into one."""
        if not datasets:
            raise ValidationError("concat needs at least one dataset")
        series: list[TimeSeries] = []
        for d in datasets:
            series.extend(d.series)
        return StreamDataset(series)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamDataset(n_series={len(self)}, v={self.n_attributes}, "
            f"records={self.n_records})"
        )
