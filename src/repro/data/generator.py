"""Synthetic network-monitoring data generator.

The paper's evaluation uses a proprietary AT&T mobility-network feed: 20,000
time series (one per sector), each of length at most 170, with three
attributes (Section 4.1). This module generates a synthetic stand-in with the
statistical structure every downstream experiment relies on:

* **Attribute 1** — a traffic-volume measure. Heavily right-skewed on the raw
  scale, and built so the natural-log transform *over-corrects* into a
  left-skewed distribution (the mechanism behind Figure 4 and the Winsorized
  tail flip of Section 5.3): the log-scale values carry a left-skewed
  (negative-gamma) innovation.
* **Attribute 2** — a session-count measure, correlated with Attribute 1 so
  that multivariate-normal imputation has signal to exploit.
* **Attribute 3** — a success-ratio confined to ``[0, 1]`` with its bulk close
  to 1 (the target of inconsistency constraint 2 and the Figure 5 analysis).
* A **diurnal cycle** (period 24; a 170-step series is one week of hourly
  measurements) plus per-node random effects, giving the streams realistic
  temporal and cross-sectional structure.

The generator produces *clean* truth; glitches are layered on by
:class:`repro.data.glitch_injection.GlitchInjector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.data.dataset import StreamDataset
from repro.data.stream import DEFAULT_ATTRIBUTES, TimeSeries
from repro.data.topology import NetworkTopology, NodeId
from repro.errors import ValidationError
from repro.utils.rng import Seed, as_generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> cleaning -> data)
    from repro.core.pipeline import Pipeline, ShardSpec, ShardedStage

__all__ = [
    "GeneratorConfig",
    "GenerationShard",
    "generate_shard",
    "NetworkDataGenerator",
]


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameters of the synthetic network data model.

    The defaults produce a scaled-down population (600 sectors) with the same
    per-series structure as the paper's 20,000-sector feed; the paper-scale
    configuration lives in :mod:`repro.experiments.config`.
    """

    #: Hierarchy shape (sectors = n_rnc * towers_per_rnc * sectors_per_tower).
    n_rnc: int = 4
    towers_per_rnc: int = 10
    sectors_per_tower: int = 15
    #: Series length; the paper's streams have length at most 170.
    series_length: int = 170
    #: If < series_length, node uptime varies: lengths ~ U[min_length, length].
    min_length: int = 170
    #: Diurnal period in time steps (24 = hourly data).
    diurnal_period: int = 24

    # Attribute 1 (log-scale model: attr1 = exp(Z)).
    attr1_log_mean: float = 3.0
    attr1_node_sd: float = 0.35
    attr1_diurnal_amp_range: tuple[float, float] = (0.3, 0.7)
    #: Shape of the left-skewed (negative gamma) log-scale innovation; the
    #: innovation has mean 0 and skewness -2/sqrt(shape).
    attr1_innovation_shape: float = 2.0
    attr1_innovation_scale: float = 0.35

    # Attribute 2 (correlated session count): attr2 = exp(a + b*(Z - mu) + noise).
    # The combined log-scale sd (~0.9) makes raw attr2 strongly right-skewed:
    # attr2 is never log-transformed, so the Gaussian imputer always faces
    # this skew (part of the paper's "assumptions not suitable for the data").
    attr2_log_mean: float = 1.6
    attr2_coupling: float = 0.7
    attr2_noise_sd: float = 0.85

    # Legitimate usage surges: with small probability a record carries a
    # genuine extreme (flash crowd, special event) on attributes 1 and 2.
    # These are *real* values present in clean and ideal data alike: they
    # widen the ideal-sample 3-sigma limits (so a model-based imputer's
    # draws mostly stay inside them, as in the paper's Table 1 where
    # Strategy 2 adds under one point of new outliers) and they are exactly
    # the legitimate-but-extreme values a blind Winsorization mangles —
    # the commission errors of the paper's Figure 1.
    surge_prob: float = 0.008
    attr1_surge_range: tuple[float, float] = (8.0, 25.0)
    attr2_surge_range: tuple[float, float] = (10.0, 30.0)

    # Attribute 3 (success ratio near 1): attr3 = 1 - deficit. The deficit is
    # a low-shape gamma: the bulk hugs 1 tightly (median deficit ~0.007)
    # while a heavy tail of service degradations stretches far below. A
    # Gaussian fitted to this attribute badly overestimates the bulk spread —
    # the mechanism behind the paper's Figure 5 (imputations over the whole
    # range, including impossible values above 1).
    attr3_deficit_shape: float = 0.25
    attr3_deficit_scale: float = 0.05
    #: Load sensitivity: higher attr1 innovations slightly depress the ratio.
    attr3_load_coupling: float = 0.01

    def __post_init__(self) -> None:
        if self.series_length < 1:
            raise ValidationError("series_length must be >= 1")
        if not 1 <= self.min_length <= self.series_length:
            raise ValidationError(
                "min_length must satisfy 1 <= min_length <= series_length"
            )
        if self.diurnal_period < 1:
            raise ValidationError("diurnal_period must be >= 1")
        lo, hi = self.attr1_diurnal_amp_range
        if lo < 0 or hi < lo:
            raise ValidationError("attr1_diurnal_amp_range must be 0 <= lo <= hi")
        for name in (
            "attr1_node_sd",
            "attr1_innovation_shape",
            "attr1_innovation_scale",
            "attr2_noise_sd",
            "attr3_deficit_shape",
            "attr3_deficit_scale",
        ):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")
        if not 0.0 <= self.surge_prob <= 1.0:
            raise ValidationError("surge_prob must lie in [0, 1]")
        for rng_name in ("attr1_surge_range", "attr2_surge_range"):
            lo_s, hi_s = getattr(self, rng_name)
            if not (1.0 <= lo_s <= hi_s):
                raise ValidationError(f"{rng_name} must satisfy 1 <= lo <= hi")

    @property
    def n_sectors(self) -> int:
        """Total number of generated series."""
        return self.n_rnc * self.towers_per_rnc * self.sectors_per_tower


@dataclass(frozen=True)
class GenerationShard:
    """Picklable work unit: generate the series of one contiguous node range.

    ``shard.seeds[i]`` is the pre-spawned stream of node ``nodes[i]``; every
    series is a function of the config and its own stream alone, so shards
    can be generated in any order, on any backend, with identical output.
    """

    config: GeneratorConfig
    nodes: tuple[NodeId, ...]
    shard: ShardSpec


def generate_shard(unit: GenerationShard) -> list[TimeSeries]:
    """Generate the clean series of one :class:`GenerationShard`."""
    return [
        _node_series(unit.config, node, np.random.default_rng(seq))
        for node, seq in zip(unit.nodes, unit.shard.seeds)
    ]


def _node_series(
    cfg: GeneratorConfig, node: NodeId, rng: np.random.Generator
) -> TimeSeries:
    """One node's clean series from its own random stream."""
    length = (
        cfg.series_length
        if cfg.min_length == cfg.series_length
        else int(rng.integers(cfg.min_length, cfg.series_length + 1))
    )
    values = _node_values(cfg, rng, length)
    return TimeSeries(node, values, DEFAULT_ATTRIBUTES, truth=values.copy())


class NetworkDataGenerator:
    """Generates clean multivariate streams on a three-level hierarchy.

    Generation is shard-parallel: every node draws from its own random
    stream pre-spawned from the generator seed by node index, so the output
    for a given seed is identical whether :meth:`generate` runs serially or
    fans :class:`GenerationShard` units across an execution backend.

    Examples
    --------
    >>> gen = NetworkDataGenerator(GeneratorConfig(), seed=7)
    >>> clean = gen.generate()
    >>> len(clean), clean.n_attributes
    (600, 3)
    """

    def __init__(self, config: GeneratorConfig | None = None, seed: Seed = None):
        self.config = config or GeneratorConfig()
        self._rng = as_generator(seed)
        self.topology = NetworkTopology(
            self.config.n_rnc,
            self.config.towers_per_rnc,
            self.config.sectors_per_tower,
        )

    def generate_shards(
        self, pipeline: "Optional[Pipeline]" = None
    ) -> "tuple[list[ShardSpec], ShardedStage]":
        """Shard specs plus the generation stage over disjoint node ranges.

        Per-node seed streams are spawned up front from the generator seed,
        so the resulting work units produce the same series under any shard
        layout or backend.
        """
        from repro.core.pipeline import Pipeline, ShardedStage

        pipeline = pipeline or Pipeline()
        cfg = self.config
        nodes = self.topology.nodes
        shards = pipeline.shards(len(nodes), seed=self._rng)
        stage = ShardedStage(
            "generate",
            generate_shard,
            lambda s: GenerationShard(
                config=cfg, nodes=tuple(nodes[s.start : s.stop]), shard=s
            ),
        )
        return shards, stage

    def generate(self, backend=None, shard_size: Optional[int] = None) -> StreamDataset:
        """Generate the clean population data set.

        Each returned series carries its own values as ``truth`` so that
        downstream glitch injection can preserve the pre-glitch ground truth.
        ``backend`` selects the execution backend fanning the shards out (a
        name, an :class:`~repro.core.executor.ExecutionBackend`, or a
        :class:`~repro.core.pipeline.Pipeline`); the default is serial and
        every choice yields bitwise-identical data.
        """
        from repro.core.pipeline import Pipeline

        pipeline = Pipeline.coerce(backend, shard_size=shard_size)
        shards, stage = self.generate_shards(pipeline)
        return StreamDataset.from_shards(pipeline.run_chunks(stage, shards))


# -- internals -------------------------------------------------------------------


def _node_values(cfg: GeneratorConfig, rng: np.random.Generator, length: int) -> np.ndarray:
    t = np.arange(length)

    # Log-scale signal Z for attribute 1: node effect + diurnal cycle +
    # left-skewed innovation. exp(Z) is then heavily right-skewed while
    # log(attr1) = Z is left-skewed, which is what flips the Winsorized
    # tail under the log transform (Section 5.3).
    node_mu = cfg.attr1_log_mean + rng.normal(0.0, cfg.attr1_node_sd)
    amp = rng.uniform(*cfg.attr1_diurnal_amp_range)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    diurnal = amp * np.sin(2.0 * np.pi * t / cfg.diurnal_period + phase)
    shape, scale = cfg.attr1_innovation_shape, cfg.attr1_innovation_scale
    innovation = shape * scale - rng.gamma(shape, scale, size=length)
    z = node_mu + diurnal + innovation
    attr1 = np.exp(z)

    # Attribute 2: log-linearly coupled to Z plus independent noise.
    attr2 = np.exp(
        cfg.attr2_log_mean
        + cfg.attr2_coupling * (z - cfg.attr1_log_mean)
        + rng.normal(0.0, cfg.attr2_noise_sd, size=length)
    )

    # Legitimate usage surges hit attributes 1 and 2 together.
    surge = rng.random(length) < cfg.surge_prob
    n_surge = int(surge.sum())
    if n_surge:
        attr1[surge] *= rng.uniform(*cfg.attr1_surge_range, size=n_surge)
        attr2[surge] *= rng.uniform(*cfg.attr2_surge_range, size=n_surge)

    # Attribute 3: a ratio hugging 1 with a left tail; load pushes it down.
    deficit = rng.gamma(cfg.attr3_deficit_shape, cfg.attr3_deficit_scale, size=length)
    load_term = cfg.attr3_load_coupling * np.maximum(z - node_mu, 0.0)
    attr3 = np.clip(1.0 - deficit - load_term, 0.0, 1.0)

    return np.column_stack([attr1, attr2, attr3])
