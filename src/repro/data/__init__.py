"""Hierarchical network data substrate.

The paper's evaluation data are streams collected on a three-level mobility
network hierarchy: RNC -> cell tower (Node B) -> sector/antenna (Section 3.1).
This package provides the topology model, the time-series containers, the
synthetic generator that stands in for the proprietary AT&T feed, and the
glitch injector that reproduces the paper's glitch mix.
"""

from repro.data.block import SampleBlock, block_fast_path_enabled
from repro.data.dataset import StreamDataset
from repro.data.generator import GenerationShard, GeneratorConfig, NetworkDataGenerator, generate_shard
from repro.data.glitch_injection import (
    GlitchInjectionConfig,
    GlitchInjector,
    InjectionShard,
    inject_shard,
)
from repro.data.slab import SlabFeed, SlabSource, TimeSlab, load_slab
from repro.data.stream import TimeSeries
from repro.data.topology import NetworkTopology, NodeId
from repro.data.window import WindowHistory

__all__ = [
    "NodeId",
    "NetworkTopology",
    "TimeSeries",
    "StreamDataset",
    "SampleBlock",
    "block_fast_path_enabled",
    "WindowHistory",
    "GeneratorConfig",
    "NetworkDataGenerator",
    "GenerationShard",
    "generate_shard",
    "GlitchInjectionConfig",
    "GlitchInjector",
    "InjectionShard",
    "inject_shard",
    "SlabFeed",
    "SlabSource",
    "TimeSlab",
    "load_slab",
]
