"""Columnar sample blocks — the contiguous fast-path representation.

A replication sample is ``B`` whole series of identical shape drawn with
replacement from one population (Section 2.1.1), and the experiment evaluates
R x B x |strategies| of them. Object-at-a-time ``TimeSeries`` loops pay Python
overhead per series; :class:`SampleBlock` stores the same sample as **one**
``(n_series, T, v)`` float tensor plus shared attribute metadata and a
series-index vector, so cleaning, annotation and scoring can run as whole-
block array programs (cf. the columnar scan-sharing lessons the database
literature draws for exactly this repeated-small-matrix workload).

The block is an alternative *layout*, never an alternative *semantics*:
``StreamDataset.to_block()`` / ``StreamDataset.from_block()`` round-trip
losslessly, ``from_block`` hands out zero-copy ``TimeSeries`` views into the
block tensor, and every block-level operation in the library is contractually
bitwise-identical to its per-series counterpart (enforced by
``tests/test_block_strategies.py``).

Blocks require a uniform series length; ragged populations simply stay on the
per-series path. The ``REPRO_BLOCK`` environment variable (``0``/``off`` to
disable) force-disables the fast path everywhere for A/B comparison.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

import numpy as np

from repro.data.topology import NodeId
from repro.errors import DataShapeError, ValidationError

__all__ = ["SampleBlock", "block_fast_path_enabled"]


def block_fast_path_enabled() -> bool:
    """Whether the columnar fast path is enabled (``REPRO_BLOCK`` knob).

    Defaults to on; set ``REPRO_BLOCK=0`` (or ``off``/``false``) to force
    every consumer back onto the per-series reference path.
    """
    return os.environ.get("REPRO_BLOCK", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


class SampleBlock:
    """A uniform-shape sample as one contiguous ``(n, T, v)`` tensor.

    Parameters
    ----------
    values:
        ``(n_series, T, v)`` float array; NaN marks missing entries.
    attributes:
        Names of the ``v`` attributes, shared by every series.
    nodes:
        The :class:`~repro.data.topology.NodeId` of each series, in order.
    truth:
        Optional ``(n_series, T, v)`` pre-glitch ground truth (present only
        when every member series carries one).
    indices:
        ``(n_series,)`` series-index vector: which parent-population series
        each row was drawn from (repeats allowed — sampling is with
        replacement). Defaults to ``arange(n_series)``.
    """

    __slots__ = ("values", "attributes", "nodes", "truth", "indices")

    def __init__(
        self,
        values: np.ndarray,
        attributes: Sequence[str],
        nodes: Sequence[NodeId],
        truth: Optional[np.ndarray] = None,
        indices: Optional[np.ndarray] = None,
    ):
        values = np.asarray(values, dtype=float)
        if values.ndim != 3:
            raise DataShapeError(
                f"values must be (n, T, v), got shape {values.shape}"
            )
        attributes = tuple(attributes)
        if len(attributes) != values.shape[2]:
            raise DataShapeError(
                f"got {len(attributes)} attribute names for {values.shape[2]} columns"
            )
        nodes = tuple(nodes)
        if len(nodes) != values.shape[0]:
            raise DataShapeError(
                f"got {len(nodes)} nodes for {values.shape[0]} series"
            )
        if truth is not None:
            truth = np.asarray(truth, dtype=float)
            if truth.shape != values.shape:
                raise DataShapeError(
                    f"truth shape {truth.shape} does not match values shape {values.shape}"
                )
        if indices is None:
            indices = np.arange(values.shape[0], dtype=np.intp)
        else:
            indices = np.asarray(indices, dtype=np.intp)
            if indices.shape != (values.shape[0],):
                raise DataShapeError(
                    f"indices must be ({values.shape[0]},), got {indices.shape}"
                )
        self.values = values
        self.attributes = attributes
        self.nodes = nodes
        self.truth = truth
        self.indices = indices

    # -- shape -----------------------------------------------------------------

    @property
    def n_series(self) -> int:
        """Number of member series ``n`` (``B`` for a replication sample)."""
        return int(self.values.shape[0])

    @property
    def length(self) -> int:
        """Shared number of time steps ``T``."""
        return int(self.values.shape[1])

    @property
    def n_attributes(self) -> int:
        """Number of attributes ``v``."""
        return int(self.values.shape[2])

    def __len__(self) -> int:
        return self.n_series

    def attribute_index(self, name: str) -> int:
        """Column index of attribute *name* (raises ``KeyError`` if absent)."""
        try:
            return self.attributes.index(name)
        except ValueError:
            raise KeyError(
                f"unknown attribute {name!r}; have {self.attributes}"
            ) from None

    # -- masks -----------------------------------------------------------------

    @property
    def missing_mask(self) -> np.ndarray:
        """Boolean ``(n, T, v)`` mask of not-populated cells."""
        return np.isnan(self.values)

    # -- derivation ------------------------------------------------------------

    def take(self, indices: Sequence[int]) -> "SampleBlock":
        """A new block of the series at *indices* (repeats allowed).

        This is the block analogue of ``StreamDataset.subset``: one C-level
        gather into a fresh contiguous tensor instead of per-series object
        work — the shape replication sampling uses to draw ``Di`` from ``D``.
        """
        idx = np.asarray(indices, dtype=np.intp)
        if idx.ndim != 1 or idx.size == 0:
            raise ValidationError("take needs at least one index")
        n = self.n_series
        if idx.size and (int(idx.min()) < -n or int(idx.max()) >= n):
            raise ValidationError(f"index out of range for {n} series")
        return SampleBlock(
            values=self.values[idx],
            attributes=self.attributes,
            nodes=tuple(self.nodes[int(i)] for i in idx),
            truth=None if self.truth is None else self.truth[idx],
            indices=self.indices[idx],
        )

    def copy(self) -> "SampleBlock":
        """Deep copy of the value tensor (truth/metadata shared: never mutated)."""
        return SampleBlock(
            values=self.values.copy(),
            attributes=self.attributes,
            nodes=self.nodes,
            truth=self.truth,
            indices=self.indices,
        )

    def with_values(self, values: np.ndarray) -> "SampleBlock":
        """A new block with replaced values and shared metadata."""
        return SampleBlock(
            values=values,
            attributes=self.attributes,
            nodes=self.nodes,
            truth=self.truth,
            indices=self.indices,
        )

    # -- pooling ---------------------------------------------------------------

    def pooled(self, dropna: str = "none") -> np.ndarray:
        """Stack every time instant of every series into an ``(N, v)`` array.

        Row order matches ``StreamDataset.pooled`` exactly (series-major,
        time-minor), so distances computed from block columns are bitwise
        identical to the per-series pooling path.
        """
        if dropna not in ("none", "any", "all"):
            raise ValidationError(f"dropna must be none/any/all, got {dropna!r}")
        stacked = self.values.reshape(-1, self.n_attributes)
        if dropna == "any":
            return stacked[~np.isnan(stacked).any(axis=1)]
        if dropna == "all":
            return stacked[~np.isnan(stacked).all(axis=1)]
        return stacked

    # -- pickling (``__slots__`` has no instance dict) ---------------------------

    def __getstate__(self):
        return (self.values, self.attributes, self.nodes, self.truth, self.indices)

    def __setstate__(self, state) -> None:
        values, attributes, nodes, truth, indices = state
        self.values = values
        self.attributes = attributes
        self.nodes = nodes
        self.truth = truth
        self.indices = indices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SampleBlock(n={self.n_series}, T={self.length}, "
            f"v={self.n_attributes}, truth={'yes' if self.truth is not None else 'no'})"
        )
