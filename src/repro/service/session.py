"""Multi-tenant live monitoring sessions over the incremental core.

A :class:`MonitoringSession` is one tenant's experiment against one
population, fed by push: every :class:`~repro.data.window.StreamWindow`
arrival folds through an :class:`~repro.core.incremental.IncrementalScorer`
(live per-stream scores, arrival-order invariant), lands in a bounded ring
of recent windows (the :class:`~repro.data.slab.SlabFeed` ring discipline,
sized by ``REPRO_SESSION_RING``), and leaves an audit record in the
session's :class:`~repro.service.alerts.AlertSink`. :meth:`finalize`
reassembles the journaled streams into the batch engine's exact inputs and
routes them through the same replication arithmetic
(:func:`~repro.sampling.replication.replication_index_streams` →
:class:`~repro.sampling.replication.ParentGather` →
:func:`~repro.core.framework.run_pair_stream`), so final outcomes are
**bitwise-identical** to :class:`~repro.core.streaming.StreamingExperiment`
on the same population, for every selectable distance — however hostile the
delivery order was.

Sessions of the same population share work through the PR 6 catalog: the
identification fixed point (ideal verdicts + fitted sigma limits) is
memoised as a :class:`ReferenceFrame` under a key derived from the
population recipe and the identification parameters, so the second tenant's
:meth:`identify` is a catalog read, not a refit — and, the fixed point
being deterministic, a bitwise no-op on the results.

:class:`IngestionService` is the asyncio front: N concurrent feeds push
into a bounded queue (``REPRO_SESSION_BACKPRESSURE``) drained by one
folding consumer — ingestion is concurrent, folding is serialised, and the
order the event loop happens to produce is exactly the disorder the
invariance contract absorbs.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.core.executor import resolve_backend
from repro.core.framework import ExperimentConfig, ExperimentResult, run_pair_stream
from repro.core.glitch_index import GlitchWeights
from repro.core.incremental import (
    IncrementalScorer,
    WindowDelta,
    build_parent_gathers,
    iter_test_pairs,
    split_verdicts,
)
from repro.data.window import StreamWindow
from repro.errors import ValidationError
from repro.glitches.constraints import ConstraintSet, paper_constraints
from repro.glitches.detectors import (
    DetectorSuite,
    ScaleTransform,
    SigmaLimits,
    SigmaOutlierDetector,
)
from repro.sampling.replication import replication_index_streams
from repro.store.catalog import Catalog, code_salt, resolve_catalog
from repro.utils.validation import check_fraction, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cleaning.base import CleaningStrategy
    from repro.distance.base import Distance
    from repro.service.alerts import AlertSink

__all__ = [
    "SESSION_RING_ENV_VAR",
    "SESSION_BACKPRESSURE_ENV_VAR",
    "session_ring_capacity",
    "session_backpressure",
    "ReferenceFrame",
    "frame_key",
    "MonitoringSession",
    "IngestionService",
    "serve_windows",
]

#: Ring capacity of recent windows each session retains (default 4 — the
#: same bound as :class:`~repro.data.slab.SlabFeed`'s time-slab ring).
SESSION_RING_ENV_VAR = "REPRO_SESSION_RING"

#: Bound of the ingestion queue between the async feeds and the folding
#: consumer; a full queue backpressures producers (default 64).
SESSION_BACKPRESSURE_ENV_VAR = "REPRO_SESSION_BACKPRESSURE"


def _env_int(var: str, default: int) -> int:
    raw = os.environ.get(var, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValidationError(f"{var} must be an integer, got {raw!r}")
    return check_positive_int(value, var)


def session_ring_capacity(default: int = 4) -> int:
    """The configured per-session ring bound (``REPRO_SESSION_RING``)."""
    return _env_int(SESSION_RING_ENV_VAR, default)


def session_backpressure(default: int = 64) -> int:
    """The configured ingestion-queue bound (``REPRO_SESSION_BACKPRESSURE``)."""
    return _env_int(SESSION_BACKPRESSURE_ENV_VAR, default)


@dataclass(frozen=True)
class ReferenceFrame:
    """The memoised identification fixed point of one population.

    Everything a session needs to stand a detector suite back up without
    refitting: the ideal verdicts and the fitted sigma limits. The fixed
    point is a pure function of the population and the identification
    parameters (both in the catalog key), so sharing a frame across
    sessions is bitwise-invisible in their results.
    """

    verdicts: np.ndarray
    limits: SigmaLimits
    n_streams: int


def frame_key(
    population_key: str,
    constraints: ConstraintSet,
    transform: Optional[ScaleTransform],
    k: float,
    max_fraction: float,
    max_iter: int,
) -> str:
    """Catalog key of one population's :class:`ReferenceFrame`.

    ``(population, identification parameters, code salt)`` — everything the
    fixed point depends on, and nothing it does not; the salt retires
    frames across refactors of the identification arithmetic itself.
    """
    import hashlib

    h = hashlib.sha256()
    for part in (
        population_key,
        "|".join(c.describe() for c in constraints),
        "none" if transform is None else transform.name,
        repr(float(k)),
        repr(float(max_fraction)),
        repr(int(max_iter)),
        code_salt(),
    ):
        h.update(part.encode())
        h.update(b"\x00")
    return "frame:" + h.hexdigest()


class MonitoringSession:
    """One tenant's push-driven experiment against one population.

    Parameters
    ----------
    name:
        Tenant/session label (audit records carry it).
    config:
        The :class:`ExperimentConfig` of the final replication loop; its
        ``seed`` must be an int (the same identity requirement as the
        streaming engine).
    constraints, transform, k, max_fraction, max_iter:
        The ideal-identification parameters (same defaults as the batch
        engines).
    population_key:
        Catalog identity of the population being monitored (e.g.
        :func:`~repro.store.catalog.population_recipe_key` of its recipe).
        Required for cross-session frame sharing; without it the session
        still works, just never touches the catalog.
    catalog:
        A :class:`~repro.store.catalog.Catalog`, a path, or ``None`` to
        defer to ``REPRO_CATALOG`` — where reference frames are shared.
    alerts:
        An :class:`~repro.service.alerts.AlertSink` auditing every fold;
        ``None`` disables auditing.
    ring_capacity:
        Bound of the recent-window ring (``REPRO_SESSION_RING`` applies
        when ``None``).
    """

    def __init__(
        self,
        name: str = "default",
        config: Optional[ExperimentConfig] = None,
        constraints: Optional[ConstraintSet] = None,
        transform: Optional[ScaleTransform] = None,
        k: float = 3.0,
        max_fraction: float = 0.05,
        max_iter: int = 3,
        weights: Optional[GlitchWeights] = None,
        population_key: Optional[str] = None,
        catalog: Union[None, str, "Catalog"] = None,
        alerts: "Optional[AlertSink]" = None,
        ring_capacity: Optional[int] = None,
    ):
        if max_iter < 1:
            raise ValidationError("max_iter must be >= 1")
        self.name = name
        self.config = config or ExperimentConfig()
        if not isinstance(self.config.seed, int):
            raise ValidationError(
                "session identity requires an int ExperimentConfig.seed; "
                "SeedSequence/Generator seeds are consumed order-dependently "
                "by the in-memory replication loop"
            )
        self.constraints = (
            constraints if constraints is not None else paper_constraints()
        )
        self.transform = transform
        self.k = k
        self.max_fraction = check_fraction(max_fraction, "max_fraction")
        self.max_iter = max_iter
        self.population_key = population_key
        self._catalog, self._owns_catalog = resolve_catalog(catalog)
        self.alerts = alerts
        self.scorer = IncrementalScorer(
            self.constraints, transform=transform, weights=weights
        )
        capacity = (
            check_positive_int(ring_capacity, "ring_capacity")
            if ring_capacity is not None
            else session_ring_capacity()
        )
        #: The bounded ring of most-recent accepted windows — the session's
        #: counterpart of :attr:`repro.data.slab.SlabFeed.ring`.
        self.ring: deque[StreamWindow] = deque(maxlen=capacity)
        self._identified: Optional[tuple[np.ndarray, DetectorSuite]] = None
        self.frame_hits = 0

    # -- ingestion ---------------------------------------------------------

    def ingest(self, window: StreamWindow) -> WindowDelta:
        """Fold one pushed window; audits the delta and returns it."""
        delta = self.scorer.fold(window)
        if delta.accepted:
            self.ring.append(window)
        if self.alerts is not None:
            self.alerts.record(self.name, delta)
        return delta

    def ingest_all(self, windows: Iterable[StreamWindow]) -> List[WindowDelta]:
        """Fold a whole delivery schedule, in the order given."""
        return [self.ingest(w) for w in windows]

    @property
    def n_streams(self) -> int:
        """Distinct streams seen so far."""
        return self.scorer.journal.n_streams

    # -- identification (catalog-shared) -----------------------------------

    def _frame_key(self) -> Optional[str]:
        if self.population_key is None:
            return None
        return frame_key(
            self.population_key,
            self.constraints,
            self.transform,
            self.k,
            self.max_fraction,
            self.max_iter,
        )

    def _suite_from(self, limits: SigmaLimits) -> DetectorSuite:
        return DetectorSuite(
            constraints=self.constraints,
            outlier_detector=SigmaOutlierDetector(limits),
            transform=self.transform,
        )

    def identify(self) -> tuple[np.ndarray, DetectorSuite]:
        """The population's ideal-set fixed point, shared via the catalog.

        On a catalog hit the stored :class:`ReferenceFrame` stands the
        fitted suite back up without touching the journaled data (beyond
        backfilling the live glitch fold); on a miss the fixed point is
        computed from the journal — the exact
        :func:`~repro.core.incremental.identify_fixed_point` replay of the
        batch engines — and published for the next session. Memoised
        in-process either way.
        """
        if self._identified is not None:
            return self._identified
        key = self._frame_key()
        if self._catalog is not None and key is not None:
            frame = self._catalog.get_outcome(key)
            if isinstance(frame, ReferenceFrame):
                self.frame_hits += 1
                suite = self._suite_from(frame.limits)
                self.scorer.freeze_suite(suite)
                self._identified = (frame.verdicts, suite)
                return self._identified
        verdicts, suite = self.scorer.identify(
            k=self.k, max_fraction=self.max_fraction, max_iter=self.max_iter
        )
        if self._catalog is not None and key is not None:
            self._catalog.put_outcome(
                key,
                ReferenceFrame(
                    verdicts=verdicts,
                    limits=suite.outlier_detector.limits,
                    n_streams=int(verdicts.size),
                ),
                population_key=self.population_key,
                config=self.config,
                strategies=[],
                engine="service",
            )
        self._identified = (verdicts, suite)
        return self._identified

    # -- the final verdict --------------------------------------------------

    def finalize(
        self,
        strategies: "Sequence[CleaningStrategy]",
        distance: "Optional[Distance]" = None,
        weights: Optional[GlitchWeights] = None,
        constraints: Optional[ConstraintSet] = None,
        backend: Optional[object] = None,
    ) -> ExperimentResult:
        """Score the journaled population — bitwise the batch engines' run.

        Reassembles every stream (the journal must hold each one complete),
        splits on the identified verdicts, draws the exact per-replication
        index streams of the in-memory path, gathers the touched series,
        and evaluates through :func:`run_pair_stream` — the same arithmetic
        :class:`~repro.core.streaming.StreamingExperiment.run` drives, so
        the outcomes are bitwise-identical to both batch engines for every
        selectable distance, regardless of how the windows arrived.
        """
        cfg = self.config
        verdicts, suite = self.identify()
        series = self.scorer.journal.assemble()
        if verdicts.size != len(series):
            raise ValidationError(
                f"identified {verdicts.size} streams but the journal holds "
                f"{len(series)}"
            )
        dirty_idx, ideal_idx = split_verdicts(verdicts)
        draws = list(
            replication_index_streams(
                len(dirty_idx),
                len(ideal_idx),
                cfg.n_replications,
                cfg.sample_size,
                seed=cfg.seed,
            )
        )
        needed = frozenset(
            {dirty_idx[int(i)] for d_idx, _ in draws for i in d_idx}
            | {ideal_idx[int(i)] for _, i_idx in draws for i in i_idx}
        )
        entries = {idx: series[idx] for idx in needed}
        lengths = np.array([s.length for s in series], dtype=np.int64)
        dirty_gather, ideal_gather, use_block = build_parent_gathers(
            dirty_idx, ideal_idx, entries, lengths
        )
        return run_pair_stream(
            iter_test_pairs(draws, dirty_gather, ideal_gather, use_block),
            strategies,
            config=cfg,
            distance=distance,
            weights=weights,
            constraints=constraints,
            backend=resolve_backend(backend),
        )

    def close(self) -> None:
        """Release the catalog if the session opened it."""
        if self._owns_catalog and self._catalog is not None:
            self._catalog.close()
            self._catalog = None

    def __enter__(self) -> "MonitoringSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class IngestionService:
    """The asyncio push front: N feeds → bounded queue → one folding
    consumer.

    Feeds are async iterators of :class:`StreamWindow` (e.g.
    :func:`~repro.service.feeds.simulated_feed`); they run concurrently and
    push into an ``asyncio.Queue`` bounded by *backpressure*
    (``REPRO_SESSION_BACKPRESSURE`` when ``None``) — a slow consumer
    therefore stalls producers instead of buffering unboundedly. One
    consumer drains the queue into :meth:`MonitoringSession.ingest`, so
    folding is serialised while ingestion interleaves freely; the arrival
    order is whatever the event loop produced, which the incremental core's
    invariance contract absorbs.
    """

    def __init__(
        self,
        session: MonitoringSession,
        backpressure: Optional[int] = None,
    ):
        self.session = session
        self.backpressure = (
            check_positive_int(backpressure, "backpressure")
            if backpressure is not None
            else session_backpressure()
        )

    async def run(self, feeds: Sequence) -> List[WindowDelta]:
        """Drain every feed to exhaustion; returns the deltas in fold
        order."""
        import asyncio

        queue: "asyncio.Queue[StreamWindow]" = asyncio.Queue(
            maxsize=self.backpressure
        )
        deltas: List[WindowDelta] = []

        async def produce(feed) -> None:
            async for window in feed:
                await queue.put(window)

        async def consume() -> None:
            while True:
                window = await queue.get()
                deltas.append(self.session.ingest(window))
                queue.task_done()

        producers = [asyncio.ensure_future(produce(f)) for f in feeds]
        consumer = asyncio.ensure_future(consume())
        try:
            await asyncio.gather(*producers)
            await queue.join()
        finally:
            consumer.cancel()
            for p in producers:
                p.cancel()
        return deltas


def serve_windows(
    session: MonitoringSession,
    feeds: Sequence,
    backpressure: Optional[int] = None,
) -> List[WindowDelta]:
    """Run an :class:`IngestionService` to completion on a fresh event
    loop — the one-call synchronous front for tests and benches."""
    import asyncio

    service = IngestionService(session, backpressure=backpressure)
    return asyncio.run(service.run(list(feeds)))
