"""Push-driven live monitoring on top of the incremental fold core.

The pull engine (:mod:`repro.core.streaming`) asks a feed for slabs; this
package inverts the arrow: per-tower window feeds *push*
:class:`~repro.data.window.StreamWindow` arrivals — bursty, out-of-order,
duplicated — at a :class:`~repro.service.session.MonitoringSession`, whose
:class:`~repro.core.incremental.IncrementalScorer` updates live per-stream
scores on every arrival and reassembles the batch engine's exact inputs for
the final verdicts. Delivery order is contractually invisible: the same
window set yields bitwise-identical final scores however it arrived.
"""

from repro.service.alerts import AlertSink, AuditRecord
from repro.service.feeds import arrival_schedule, simulated_feed
from repro.service.session import (
    SESSION_BACKPRESSURE_ENV_VAR,
    SESSION_RING_ENV_VAR,
    IngestionService,
    MonitoringSession,
    ReferenceFrame,
    frame_key,
    serve_windows,
    session_backpressure,
    session_ring_capacity,
)

__all__ = [
    "AlertSink",
    "AuditRecord",
    "arrival_schedule",
    "simulated_feed",
    "SESSION_BACKPRESSURE_ENV_VAR",
    "SESSION_RING_ENV_VAR",
    "IngestionService",
    "MonitoringSession",
    "ReferenceFrame",
    "frame_key",
    "serve_windows",
    "session_backpressure",
    "session_ring_capacity",
]
