"""Simulated live window feeds — bursty, out-of-order, at-least-once.

Real per-tower telemetry reaches a collector through queues and retries, so
windows arrive in whatever order the transport produced: shuffled across
towers, occasionally duplicated, in bursts. :func:`arrival_schedule` builds
such a delivery plan *deterministically* from a seed (the invariance tests
replay the same hostile order at will), and :func:`simulated_feed` plays a
plan back as an async iterator, with the ``feed.stall`` / ``feed.dup`` /
``feed.reorder`` fault sites (:mod:`repro.testing.faults`) injecting the
same pathologies on demand in otherwise-clean runs.
"""

from __future__ import annotations

from typing import AsyncIterator, Iterable, List, Optional, Sequence

import numpy as np

from repro.data.window import StreamWindow
from repro.errors import ValidationError
from repro.testing.faults import fault_fires
from repro.utils.rng import Seed, as_generator

__all__ = ["arrival_schedule", "interleave_feeds", "simulated_feed"]


def arrival_schedule(
    windows: Sequence[StreamWindow],
    seed: Seed = 0,
    reorder: float = 0.0,
    duplicate: float = 0.0,
    burst: int = 1,
) -> List[StreamWindow]:
    """A deterministic hostile delivery order for a window set.

    ``reorder`` shuffles that fraction of positions (1.0 = a full
    permutation across all streams); ``duplicate`` re-delivers that
    fraction of windows a second time, at a random later position (the
    at-least-once transport); ``burst`` > 1 then rotates each consecutive
    burst-sized group so arrivals come in micro-bursts rather than one by
    one. The plan is a pure function of ``(windows, seed, knobs)`` — the
    invariance tests replay it bit for bit.

    Duplicates are exact re-deliveries of the same :class:`StreamWindow`
    (same ``(stream_id, seq)`` key), which the session journal refuses —
    folding a schedule therefore yields the same state as folding the
    originals in order.
    """
    if not 0.0 <= reorder <= 1.0 or not 0.0 <= duplicate <= 1.0:
        raise ValidationError("reorder and duplicate must lie in [0, 1]")
    if burst < 1:
        raise ValidationError(f"burst must be >= 1, got {burst}")
    rng = as_generator(seed)
    plan = list(windows)
    n = len(plan)
    if n == 0:
        return plan
    if reorder > 0.0:
        k = max(2, int(round(reorder * n))) if n > 1 else 1
        moved = rng.choice(n, size=min(k, n), replace=False)
        shuffled = moved.copy()
        rng.shuffle(shuffled)
        out: List[Optional[StreamWindow]] = list(plan)
        for src, dst in zip(moved, shuffled):
            out[dst] = plan[src]
        plan = [w for w in out if w is not None]
    if duplicate > 0.0:
        k = int(round(duplicate * len(plan)))
        for i in sorted(
            rng.choice(len(plan), size=min(k, len(plan)), replace=False),
            reverse=True,
        ):
            at = int(rng.integers(i, len(plan))) + 1
            plan.insert(at, plan[i])
    if burst > 1:
        rotated: List[StreamWindow] = []
        for a in range(0, len(plan), burst):
            group = plan[a : a + burst]
            rotated.extend(group[::-1])
        plan = rotated
    return plan


async def simulated_feed(
    windows: Iterable[StreamWindow],
) -> AsyncIterator[StreamWindow]:
    """Play one feed's windows back asynchronously, fault sites armed.

    Per window, in order: ``feed.reorder`` holds the window and delivers
    the *next* one first (one-step out-of-order arrival); ``feed.stall``
    yields to the event loop before delivering (a slow producer — other
    feeds' windows overtake it); ``feed.dup`` delivers the window twice
    (an at-least-once retry). All three are deterministic
    :mod:`repro.testing.faults` sites, so a CI smoke can demand exactly N
    occurrences.
    """
    import asyncio

    held: Optional[StreamWindow] = None
    for window in windows:
        if held is not None:
            pending, held = [window, held], None
        else:
            pending = [window]
        while pending:
            w = pending.pop(0)
            if held is None and fault_fires("feed.reorder"):
                held = w
                continue
            if fault_fires("feed.stall"):
                await asyncio.sleep(0)
            yield w
            if fault_fires("feed.dup"):
                yield w
    if held is not None:
        yield held


def interleave_feeds(
    per_feed: Sequence[Sequence[StreamWindow]], seed: Seed = 0
) -> List[StreamWindow]:
    """Deterministically interleave several feeds' in-order window lists.

    Each step picks a feed (weighted by how many windows it still holds)
    and takes its next window — per-feed order is preserved, global order
    is the transport's. The single-consumer analogue of running the async
    feeds concurrently.
    """
    rng = as_generator(seed)
    queues = [list(w) for w in per_feed]
    out: List[StreamWindow] = []
    while any(queues):
        remaining = np.array([len(q) for q in queues], dtype=float)
        pick = int(rng.choice(len(queues), p=remaining / remaining.sum()))
        out.append(queues[pick].pop(0))
    return out
