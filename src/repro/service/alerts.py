"""Audit trail and alerting over live detector verdicts.

Every window a session folds leaves one :class:`AuditRecord` — the
injection→detection→audit-table shape: what arrived, whether it was a
duplicate, and the stream's live cleanliness fractions and glitch score
after the fold. Streams whose live state crosses the sink's thresholds
raise alerts, deduplicated per stream (an alert latches until the stream's
state drops back under every threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.incremental import WindowDelta

__all__ = ["AuditRecord", "AlertSink"]


@dataclass(frozen=True)
class AuditRecord:
    """One folded arrival, as the audit table sees it."""

    session: str
    stream_id: int
    seq: int
    arrival: int
    accepted: bool
    n_records: int
    miss_fraction: float
    inc_fraction: float
    out_fraction: Optional[float]
    glitch_score: Optional[float]
    alert: bool


class AlertSink:
    """In-memory audit/alert sink for a session's detector verdicts.

    Parameters
    ----------
    glitch_threshold:
        Alert when a stream's live weighted glitch score reaches this value
        (needs a frozen detector suite — before that, glitch scores are
        ``None`` and never alert).
    fraction_threshold:
        Alert when any live record-level glitch fraction (missing,
        inconsistent, or — once a suite froze — outlier) reaches this
        value. The natural choice is the experiment's ``max_fraction``:
        streams the identification would rule non-ideal alert as their
        evidence accumulates.
    """

    def __init__(
        self,
        glitch_threshold: Optional[float] = None,
        fraction_threshold: Optional[float] = None,
    ):
        self.glitch_threshold = glitch_threshold
        self.fraction_threshold = fraction_threshold
        self.records: List[AuditRecord] = []
        self._alerting: Dict[int, bool] = {}
        self.alerts: List[AuditRecord] = []

    def _breaches(self, delta: WindowDelta) -> bool:
        if self.fraction_threshold is not None:
            fractions = [delta.miss_fraction, delta.inc_fraction]
            if delta.out_fraction is not None:
                fractions.append(delta.out_fraction)
            if any(f >= self.fraction_threshold for f in fractions):
                return True
        if (
            self.glitch_threshold is not None
            and delta.glitch_score is not None
            and delta.glitch_score >= self.glitch_threshold
        ):
            return True
        return False

    def record(self, session: str, delta: WindowDelta) -> AuditRecord:
        """Audit one fold delta; returns the record (``alert`` set on the
        arrival that newly crossed a threshold)."""
        breaches = self._breaches(delta)
        was_alerting = self._alerting.get(delta.stream_id, False)
        alert = breaches and not was_alerting
        self._alerting[delta.stream_id] = breaches
        rec = AuditRecord(
            session=session,
            stream_id=delta.stream_id,
            seq=delta.seq,
            arrival=delta.arrival,
            accepted=delta.accepted,
            n_records=delta.n_records,
            miss_fraction=delta.miss_fraction,
            inc_fraction=delta.inc_fraction,
            out_fraction=delta.out_fraction,
            glitch_score=delta.glitch_score,
            alert=alert,
        )
        self.records.append(rec)
        if alert:
            self.alerts.append(rec)
        return rec

    def stream_history(self, stream_id: int) -> List[AuditRecord]:
        """The audit records of one stream, in arrival order."""
        return [r for r in self.records if r.stream_id == stream_id]

    def alerting_streams(self) -> List[int]:
        """Streams whose live state currently breaches a threshold."""
        return sorted(i for i, on in self._alerting.items() if on)

    @property
    def n_duplicates(self) -> int:
        """Audited arrivals that were refused as duplicates."""
        return sum(1 for r in self.records if not r.accepted)
