"""Earth Mover's Distance — the paper's statistical-distortion metric.

Section 3.5: EMD is the minimum-cost flow between two binned distributions on
a shared support, normalised by total flow. For probability distributions the
total flow is 1, so EMD equals the optimal transportation cost; we keep the
explicit normalisation anyway to match the paper's formula.

Three computation paths:

* **1-D exact, sample-level** (:func:`emd_1d`): no binning at all — the L1
  distance between empirical CDFs, which is the exact 1-Wasserstein distance.
* **1-D exact, histogram-level**: univariate histogram pairs bypass the dense
  transport solve entirely through the vectorised closed form
  :func:`~repro.distance.transport.transport_cost_1d` (the optimum is the
  CDF-difference integral, so no LP is needed and no accuracy is lost).
* **Multivariate** (:class:`EarthMoverDistance`): samples are binned on a
  shared grid (:class:`~repro.distance.histogram.HistogramBinner`), the
  ground distance is the Euclidean distance between occupied bin centres in
  the binner's standardised coordinates, and the flow is solved by
  :func:`~repro.distance.transport.solve_transport`.

For scoring many candidate distributions against one reference (the
experiment framework's per-strategy distortions), use
:meth:`EarthMoverDistance.pairwise` / :func:`pairwise_emd`: the reference is
standardised, sorted and binned once, and all candidates share one grid.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.distance.base import Distance, clean_panel, clean_sample
from repro.distance.histogram import HistogramBinner, SparseHistogram
from repro.distance.transport import (
    solve_transport_batch,
    transport_cost_1d,
)
from repro.errors import DistanceError
from repro.stats.ecdf import Ecdf, EcdfSketch

__all__ = [
    "emd_1d",
    "EarthMoverDistance",
    "emd_between_histograms",
    "emd_between_histograms_batch",
    "pairwise_emd",
]


def emd_1d(x: np.ndarray, y: np.ndarray) -> float:
    """Exact 1-D Earth Mover's (1-Wasserstein) distance between samples.

    Computed as the integral of ``|F - G|``; NaNs are dropped.
    """
    x = clean_sample(x, "x").ravel()
    y = clean_sample(y, "y").ravel()
    return Ecdf(x).l1_distance(Ecdf(y))


def emd_between_histograms(
    p: SparseHistogram, q: SparseHistogram, backend: str = "auto"
) -> float:
    """EMD between two pre-binned distributions on a common coordinate frame.

    The ground distance is the Euclidean distance between bin centres —
    ``|b_i - b_j|`` in the paper's notation. Univariate histograms skip the
    dense solver: on the line the optimum has the closed form computed by
    :func:`~repro.distance.transport.transport_cost_1d`, which every dense
    backend would only reproduce at greater cost.

    When both histograms carry grid ``keys`` (same binner call), the mass the
    two sides share bin-for-bin is settled in place first: the ground
    distance is a metric (``c(i, i) = 0`` + triangle inequality), so an
    optimal plan never pays to move mass a bin could keep, and only the
    **residual** marginals enter the transportation solve. A treated sample
    typically coincides with its dirty reference on most records, so the LP
    shrinks from hundreds of occupied bins per side to the few that actually
    changed — the dominant term of the experiment loop's distortion cost.
    """
    return emd_between_histograms_batch(p, [q], backend=backend)[0]


def emd_between_histograms_batch(
    p: SparseHistogram, qs: Sequence[SparseHistogram], backend: str = "auto"
) -> list[float]:
    """EMD from one reference histogram to each candidate.

    The experiment framework's panel form: every candidate's shared mass is
    cancelled against the reference, and the surviving residual problems are
    solved in **one** block-diagonal call
    (:func:`~repro.distance.transport.solve_transport_batch`), amortising
    the LP-solver call overhead over the whole strategy panel. With a single
    candidate this is exactly :func:`emd_between_histograms`.
    """
    results: list[float] = [0.0] * len(qs)
    instances = []
    slots: list[tuple[int, float]] = []
    for k, q in enumerate(qs):
        if p.dim != q.dim:
            raise DistanceError(
                f"dimension mismatch: p has d={p.dim}, q has d={q.dim}"
            )
        if p.dim == 1:
            # probs sum to 1 on both sides, so total flow is 1 and the
            # normalised EMD equals the raw transport cost.
            results[k] = transport_cost_1d(
                p.centers.ravel(), p.probs, q.centers.ravel(), q.probs
            )
            continue
        total = float(p.probs.sum())
        supply, demand = p.probs, q.probs
        p_centers, q_centers = p.centers, q.centers
        if p.keys is not None and q.keys is not None:
            _, ip, iq = np.intersect1d(
                p.keys, q.keys, assume_unique=True, return_indices=True
            )
            shared = np.minimum(supply[ip], demand[iq])
            supply = supply.copy()
            demand = demand.copy()
            supply[ip] -= shared
            demand[iq] -= shared
            # Guard against negative round-off residue before re-solving.
            keep_p = supply > 0
            keep_q = demand > 0
            residual = float(supply[keep_p].sum())
            if residual <= 1e-15 * max(total, 1.0):
                results[k] = 0.0
                continue
            supply, demand = supply[keep_p], demand[keep_q]
            p_centers, q_centers = p_centers[keep_p], q_centers[keep_q]
        diff = p_centers[:, None, :] - q_centers[None, :, :]
        cost = np.sqrt(np.sum(diff * diff, axis=2))
        instances.append((supply, demand, cost))
        slots.append((k, total))
    if instances:
        solved = solve_transport_batch(instances, backend=backend)
        for (k, total), result in zip(slots, solved):
            # Normalise by the *full* mass: the shared part moved zero
            # distance but still counts as flow, exactly as in the
            # unreduced problem.
            results[k] = result.cost / total if total > 0 else 0.0
    return results


class EarthMoverDistance(Distance):
    """EMD between two empirical samples, as used throughout the paper.

    Parameters
    ----------
    n_bins:
        Bins per dimension for the shared grid (the paper stresses EMD "is
        not affected by binning differences"; the bin-sensitivity ablation
        bench verifies this empirically).
    binning, standardize:
        Forwarded to :class:`HistogramBinner`. The default is **uniform**
        binning: equal-mass (quantile) bins place a single huge bin over a
        heavy tail, hiding movements *within* that tail — e.g. Winsorization
        pulling a far outlier to the 3-sigma limit can land start and end in
        the same quantile bin and register zero distance. Uniform bins keep
        cross-bin distances faithful everywhere, which is what the paper's
        "not affected by binning differences" argument assumes.
    backend:
        Transportation solver backend (``"auto"``/``"simplex"``/``"highs"``/
        ``"networkx"``) for the multivariate path.
    exact_1d:
        Use the exact CDF path for univariate inputs (default True).
    """

    name = "emd"

    def __init__(
        self,
        n_bins: int = 16,
        binning: str = "uniform",
        standardize: bool = True,
        backend: str = "auto",
        exact_1d: bool = True,
    ):
        self.binner = HistogramBinner(
            n_bins=n_bins, binning=binning, standardize=standardize
        )
        self.backend = backend
        self.exact_1d = exact_1d

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        if p.shape[1] == 1 and self.exact_1d and not self.binner.standardize:
            return emd_1d(p.ravel(), q.ravel())
        if p.shape[1] == 1 and self.exact_1d:
            # Standardise with the reference frame, then use the exact path;
            # this keeps 1-D results comparable with multivariate ones.
            shift, scale = self.binner.reference_frame(p)
            return emd_1d((p.ravel() - shift[0]) / scale[0], (q.ravel() - shift[0]) / scale[0])
        hp, hq = self.binner.histogram_pair(p, q)
        return emd_between_histograms(hp, hq, backend=self.backend)

    # -- batch path -----------------------------------------------------------

    def pairwise(self, p: np.ndarray, qs: Sequence[np.ndarray]) -> list[float]:
        """EMD from one reference to each of many candidates.

        The batched fast path of the experiment framework: the reference is
        validated, standardised and (for the exact univariate path) sorted
        into an ECDF exactly once, and the multivariate path bins every
        distribution on one shared grid covering the pooled support —
        instead of re-binning the reference per candidate. With a single
        candidate the result matches :meth:`compute` exactly.
        """
        p, cleaned = clean_panel(p, qs)
        if not cleaned:
            return []
        if p.shape[1] == 1 and self.exact_1d:
            shift, scale = self.binner.reference_frame(p)
            ref = Ecdf((p.ravel() - shift[0]) / scale[0])
            return [
                ref.l1_distance(Ecdf((q.ravel() - shift[0]) / scale[0]))
                for q in cleaned
            ]
        hp, hqs = self.binner.histogram_group(p, cleaned)
        return emd_between_histograms_batch(hp, hqs, backend=self.backend)

    # -- streaming ------------------------------------------------------------

    def stream_mode(self, dim: int) -> Optional[str]:
        """Exact CDF-sketch streaming in 1-D, frozen-grid histograms else."""
        if dim == 1 and self.exact_1d:
            return "ecdf"
        return "histogram"

    def between_histograms_batch(
        self, hp: SparseHistogram, hqs: Sequence[SparseHistogram]
    ) -> list[float]:
        """Panel EMD from accumulated histograms (the streaming hook)."""
        return emd_between_histograms_batch(hp, hqs, backend=self.backend)

    def sketch_distances(
        self,
        reference: Sequence[EcdfSketch],
        candidates: Sequence[Sequence[EcdfSketch]],
        scale: Optional[np.ndarray] = None,
    ) -> list[float]:
        """Exact 1-D EMD of each candidate against the reference, from
        per-attribute :class:`~repro.stats.ecdf.EcdfSketch` panels.

        The 1-Wasserstein distance is translation-invariant and positively
        homogeneous, so the pooled path's reference-frame standardisation
        reduces to dividing the raw-value distance by the frame ``scale``
        (bitwise-identical to the pooled path when no standardisation is in
        play and the sketches are exact; ulp-level otherwise).
        """
        if len(reference) != 1:
            raise DistanceError(
                "the exact EMD sketch path is univariate; multivariate "
                "streams use the histogram mode"
            )
        s = 1.0
        if scale is not None and self.binner.standardize:
            s = float(np.asarray(scale, dtype=float).ravel()[0])
        results = []
        for panel in candidates:
            if len(panel) != 1:
                raise DistanceError("candidate panel must hold one sketch")
            if reference[0].n == 0 or panel[0].n == 0:
                raise DistanceError("cannot compare empty EcdfSketches")
            results.append(reference[0].l1_distance(panel[0]) / s)
        return results


def pairwise_emd(
    reference: np.ndarray,
    candidates: Sequence[np.ndarray],
    n_bins: int = 16,
    binning: str = "uniform",
    standardize: bool = True,
    backend: str = "auto",
    exact_1d: bool = True,
) -> list[float]:
    """EMD from *reference* to each candidate, with shared-grid caching.

    Convenience wrapper around :meth:`EarthMoverDistance.pairwise` for call
    sites that do not hold a distance instance.
    """
    distance = EarthMoverDistance(
        n_bins=n_bins,
        binning=binning,
        standardize=standardize,
        backend=backend,
        exact_1d=exact_1d,
    )
    return distance.pairwise(reference, candidates)
