"""Common interface for distribution distances.

All distances operate on two empirical samples given as ``(N, d)`` arrays
(rows = observations). One-dimensional inputs may be passed as flat arrays.
Rows containing NaN are dropped — missing cells carry no distributional mass.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

import numpy as np

from repro.errors import DistanceError

__all__ = ["Distance", "clean_sample", "clean_panel"]


def clean_sample(values: np.ndarray, name: str) -> np.ndarray:
    """Coerce a sample to a complete-case ``(N, d)`` float array."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise DistanceError(f"{name} must be (N, d) or (N,), got shape {arr.shape}")
    arr = arr[~np.isnan(arr).any(axis=1)]
    if arr.shape[0] == 0:
        raise DistanceError(f"{name} has no complete rows")
    return arr


def clean_panel(
    p: np.ndarray, qs: "Sequence[np.ndarray]"
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Clean a reference and its candidate panel, enforcing one dimension.

    The shared validation front of every batched ``pairwise`` fast path
    (EMD, KL, JS): complete-case coercion per sample plus the reference-vs-
    candidate dimension check, with stable error wording.
    """
    p = clean_sample(p, "p")
    cleaned = []
    for i, q in enumerate(qs):
        q = clean_sample(q, f"q[{i}]")
        if q.shape[1] != p.shape[1]:
            raise DistanceError(
                f"dimension mismatch: p has d={p.shape[1]}, "
                f"q[{i}] has d={q.shape[1]}"
            )
        cleaned.append(q)
    return p, cleaned


class Distance(ABC):
    """A distance between two empirical distributions.

    Subclasses implement :meth:`compute` on cleaned samples; callers use the
    instance as a callable.
    """

    #: Short identifier used in reports ("emd", "kl", ...).
    name: str = "distance"

    #: Whether the distance needs complete-case rows. The pooling layer
    #: (``statistical_distortion_batch``) drops NaN-bearing rows for
    #: complete-case distances (multivariate binning needs whole rows) and
    #: keeps them for distances with their own per-attribute NaN handling
    #: (KS), so the framework reproduces each distance's documented
    #: semantics instead of silently discarding marginal mass.
    complete_case: bool = True

    def __call__(self, p: np.ndarray, q: np.ndarray) -> float:
        """Distance between samples *p* and *q* (complete rows only)."""
        p = clean_sample(p, "p")
        q = clean_sample(q, "q")
        if p.shape[1] != q.shape[1]:
            raise DistanceError(
                f"dimension mismatch: p has d={p.shape[1]}, q has d={q.shape[1]}"
            )
        return float(self.compute(p, q))

    @abstractmethod
    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        """Distance between pre-validated ``(N, d)`` samples."""

    def pairwise(self, p: np.ndarray, qs: "Sequence[np.ndarray]") -> list[float]:
        """Distances from one reference *p* to each candidate in *qs*.

        The default just loops; distances with cacheable per-reference work
        (see :meth:`repro.distance.emd.EarthMoverDistance.pairwise`)
        override this with a batched fast path.
        """
        return [self(p, q) for q in qs]

    def stream_mode(self, dim: int) -> Optional[str]:
        """How (if at all) this distance evaluates over a one-pass stream.

        ``"histogram"`` — the distance is a function of mergeable bin masses
        on a frozen shared grid: the instance exposes a ``binner`` and a
        ``between_histograms_batch(hp, hqs)`` method, and
        :class:`~repro.core.distortion.StreamingDistortion` folds slab
        counts into grid accumulators (exact integer folding).

        ``"ecdf"`` — the distance is a function of per-attribute empirical
        CDFs: the instance exposes ``sketch_distances(reference,
        candidates, scale=...)`` over :class:`~repro.stats.ecdf.EcdfSketch`
        panels, and the streaming layer folds per-attribute sketches.

        ``None`` — pooled samples only. Subclasses that can stream in more
        than one way (EMD: exact CDF path in 1-D, histograms otherwise)
        override this to pick per *dim*.
        """
        if getattr(self, "binner", None) is not None and callable(
            getattr(self, "between_histograms_batch", None)
        ):
            return "histogram"
        if callable(getattr(self, "sketch_distances", None)):
            return "ecdf"
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
