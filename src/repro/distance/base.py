"""Common interface for distribution distances.

All distances operate on two empirical samples given as ``(N, d)`` arrays
(rows = observations). One-dimensional inputs may be passed as flat arrays.
Rows containing NaN are dropped — missing cells carry no distributional mass.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.errors import DistanceError

__all__ = ["Distance", "clean_sample"]


def clean_sample(values: np.ndarray, name: str) -> np.ndarray:
    """Coerce a sample to a complete-case ``(N, d)`` float array."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise DistanceError(f"{name} must be (N, d) or (N,), got shape {arr.shape}")
    arr = arr[~np.isnan(arr).any(axis=1)]
    if arr.shape[0] == 0:
        raise DistanceError(f"{name} has no complete rows")
    return arr


class Distance(ABC):
    """A distance between two empirical distributions.

    Subclasses implement :meth:`compute` on cleaned samples; callers use the
    instance as a callable.
    """

    #: Short identifier used in reports ("emd", "kl", ...).
    name: str = "distance"

    def __call__(self, p: np.ndarray, q: np.ndarray) -> float:
        """Distance between samples *p* and *q* (complete rows only)."""
        p = clean_sample(p, "p")
        q = clean_sample(q, "q")
        if p.shape[1] != q.shape[1]:
            raise DistanceError(
                f"dimension mismatch: p has d={p.shape[1]}, q has d={q.shape[1]}"
            )
        return float(self.compute(p, q))

    @abstractmethod
    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        """Distance between pre-validated ``(N, d)`` samples."""

    def pairwise(self, p: np.ndarray, qs: "Sequence[np.ndarray]") -> list[float]:
        """Distances from one reference *p* to each candidate in *qs*.

        The default just loops; distances with cacheable per-reference work
        (see :meth:`repro.distance.emd.EarthMoverDistance.pairwise`)
        override this with a batched fast path.
        """
        return [self(p, q) for q in qs]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
