"""Shared-support multivariate binning for distribution distances.

Section 3.5: "let P and Q be two distributions with the same support, and let
b_i, i = 1..n be the bins covering this support." Binning two samples on a
*common* grid is what makes cross-bin distances (EMD) and per-bin divergences
(KL) well defined; this module owns that step.

Only non-empty bins are materialised (:class:`SparseHistogram`): with 8 bins
per dimension a 3-attribute histogram has 512 potential cells but typically
one to two hundred occupied ones, which keeps the transportation problem
small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DistanceError
from repro.utils.validation import check_positive_int

__all__ = ["SparseHistogram", "HistogramBinner"]


@dataclass(frozen=True)
class SparseHistogram:
    """Non-empty bins of a multivariate histogram.

    ``centers`` is ``(K, d)`` — the bin-centre coordinates (in whatever
    coordinate system the binner used); ``probs`` is ``(K,)`` and sums to 1.
    ``keys`` (optional) holds the sorted flat grid ids of the occupied bins;
    two histograms produced by the **same** binner call share a key space,
    which lets the EMD solver match common bins exactly and cancel the mass
    that would be transported zero distance. Hand-built histograms may omit
    it — consumers must then treat all mass as movable.
    """

    centers: np.ndarray
    probs: np.ndarray
    keys: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        if self.centers.ndim != 2:
            raise DistanceError(f"centers must be (K, d), got {self.centers.shape}")
        if self.probs.shape != (self.centers.shape[0],):
            raise DistanceError(
                f"probs shape {self.probs.shape} does not match centers "
                f"{self.centers.shape}"
            )
        if self.keys is not None and self.keys.shape != self.probs.shape:
            raise DistanceError(
                f"keys shape {self.keys.shape} does not match probs {self.probs.shape}"
            )
        total = float(self.probs.sum())
        if not np.isclose(total, 1.0, atol=1e-8):
            raise DistanceError(f"probs must sum to 1, got {total}")

    @property
    def n_bins(self) -> int:
        """Number of occupied bins ``K``."""
        return int(self.centers.shape[0])

    @property
    def dim(self) -> int:
        """Dimensionality ``d``."""
        return int(self.centers.shape[1])


class HistogramBinner:
    """Bins two samples on a shared grid.

    Parameters
    ----------
    n_bins:
        Bins per dimension.
    binning:
        ``"quantile"`` (default) places edges at pooled-sample quantiles, so
        resolution follows the data even under the heavy tails our dirty data
        exhibit; ``"uniform"`` uses equal-width bins over the pooled range.
    standardize:
        When True (default), coordinates are first centred on the *reference*
        sample's mean and scaled by its standard deviation. Distances
        computed on bin centres are then scale-free and comparable across
        replications — without this, EMD on raw network data would be
        dominated by the largest-magnitude attribute. The plain (non-robust)
        standard deviation is deliberate: for a distribution that is a tight
        bulk plus a heavy tail (our Attribute 3), a robust scale such as the
        IQR collapses to the bulk width and any tail movement then costs an
        enormous number of scale units, swamping every other signal.
    """

    def __init__(
        self,
        n_bins: int = 8,
        binning: str = "quantile",
        standardize: bool = True,
    ):
        self.n_bins = check_positive_int(n_bins, "n_bins")
        if binning not in ("quantile", "uniform"):
            raise DistanceError(f"binning must be quantile/uniform, got {binning!r}")
        self.binning = binning
        self.standardize = standardize

    # -- public API -----------------------------------------------------------

    def histogram_pair(
        self, p: np.ndarray, q: np.ndarray
    ) -> tuple[SparseHistogram, SparseHistogram]:
        """Histogram both samples on a grid covering their union support.

        The reference for standardisation is *p* (in the distortion setting:
        the dirty data set), so the coordinate system does not drift with the
        cleaning strategy under evaluation.
        """
        hp, hqs = self.histogram_group(p, [q])
        return hp, hqs[0]

    def histogram_group(
        self, p: np.ndarray, qs: "list[np.ndarray]"
    ) -> tuple[SparseHistogram, list[SparseHistogram]]:
        """Histogram a reference against many candidates on ONE shared grid.

        The grid spans the pooled union of the reference and *every*
        candidate (the paper's "bins covering this support"), and the
        reference is standardised and binned exactly once — the histogram
        cache that lets :func:`~repro.distance.emd.pairwise_emd` score a
        whole strategy panel without re-binning the dirty sample per
        strategy. With a single candidate this reduces to
        :meth:`histogram_pair` bit for bit; with several, bin widths are a
        function of the whole group (an extreme-ranged candidate coarsens
        everyone's bins), which is what makes the group's distances
        mutually comparable — and what distinguishes a group value from a
        sequence of independent :meth:`histogram_pair` calls.
        """
        p = np.asarray(p, dtype=float)
        qs = [np.asarray(q, dtype=float) for q in qs]
        if not qs:
            raise DistanceError("histogram_group needs at least one candidate")
        for q in qs:
            if p.ndim != 2 or q.ndim != 2 or p.shape[1] != q.shape[1]:
                raise DistanceError(
                    f"samples must be (N, d) with matching d, got {p.shape} "
                    f"and {q.shape}"
                )
        shift, scale = self._reference_frame(p)
        ps = (p - shift) / scale
        qss = [(q - shift) / scale for q in qs]
        edges = self._edges(np.concatenate([ps, *qss], axis=0))
        hp = self._sparse_histogram(ps, edges)
        return hp, [self._sparse_histogram(q, edges) for q in qss]

    def reference_frame(self, p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-dimension ``(shift, scale)`` of the standardisation frame.

        Identity when ``standardize=False``; otherwise the reference
        sample's mean and (non-robust) standard deviation.
        """
        p = np.asarray(p, dtype=float)
        if p.ndim != 2:
            raise DistanceError(f"sample must be (N, d), got {p.shape}")
        return self._reference_frame(p)

    # -- internals ------------------------------------------------------------

    def _reference_frame(self, p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if not self.standardize:
            d = p.shape[1]
            return np.zeros(d), np.ones(d)
        shift = p.mean(axis=0)
        scale = p.std(axis=0)
        scale = np.where(scale > 0, scale, 1.0)
        return shift, scale

    def _edges(self, pooled: np.ndarray) -> list[np.ndarray]:
        edges = []
        for j in range(pooled.shape[1]):
            col = pooled[:, j]
            lo, hi = float(col.min()), float(col.max())
            if lo == hi:
                # Degenerate dimension: a single bin centred on the value.
                e = np.array([lo - 0.5, hi + 0.5])
            elif self.binning == "uniform":
                e = np.linspace(lo, hi, self.n_bins + 1)
            else:
                qs = np.linspace(0.0, 1.0, self.n_bins + 1)
                e = np.unique(np.quantile(col, qs))
                if e.size < 2:
                    e = np.array([lo - 0.5, hi + 0.5])
            edges.append(e)
        return edges

    def _sparse_histogram(
        self, sample: np.ndarray, edges: list[np.ndarray]
    ) -> SparseHistogram:
        n, d = sample.shape
        idx = np.empty((n, d), dtype=np.int64)
        centers_1d = []
        for j, e in enumerate(edges):
            k = np.searchsorted(e, sample[:, j], side="right") - 1
            idx[:, j] = np.clip(k, 0, e.size - 2)
            centers_1d.append(0.5 * (e[:-1] + e[1:]))
        # Collapse multi-indices to flat keys, then count unique occupied bins.
        dims = np.array([e.size - 1 for e in edges], dtype=np.int64)
        flat = np.zeros(n, dtype=np.int64)
        for j in range(d):
            flat = flat * dims[j] + idx[:, j]
        keys, counts = np.unique(flat, return_counts=True)
        centers = np.empty((keys.size, d))
        remaining = keys.copy()
        for j in range(d - 1, -1, -1):
            centers[:, j] = centers_1d[j][remaining % dims[j]]
            remaining = remaining // dims[j]
        probs = counts / counts.sum()
        return SparseHistogram(centers=centers, probs=probs, keys=keys)
