"""Shared-support multivariate binning for distribution distances.

Section 3.5: "let P and Q be two distributions with the same support, and let
b_i, i = 1..n be the bins covering this support." Binning two samples on a
*common* grid is what makes cross-bin distances (EMD) and per-bin divergences
(KL) well defined; this module owns that step.

Only non-empty bins are materialised (:class:`SparseHistogram`): with 8 bins
per dimension a 3-attribute histogram has 512 potential cells but typically
one to two hundred occupied ones, which keeps the transportation problem
small.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import DistanceError
from repro.stats.ecdf import EcdfSketch
from repro.utils.validation import check_positive_int

__all__ = [
    "SparseHistogram",
    "HistogramGrid",
    "HistogramAccumulator",
    "HistogramBinner",
    "clear_frame_cache",
]


@dataclass(frozen=True)
class SparseHistogram:
    """Non-empty bins of a multivariate histogram.

    ``centers`` is ``(K, d)`` — the bin-centre coordinates (in whatever
    coordinate system the binner used); ``probs`` is ``(K,)`` and sums to 1.
    ``keys`` (optional) holds the sorted flat grid ids of the occupied bins;
    two histograms produced by the **same** binner call share a key space,
    which lets the EMD solver match common bins exactly and cancel the mass
    that would be transported zero distance. Hand-built histograms may omit
    it — consumers must then treat all mass as movable.
    """

    centers: np.ndarray
    probs: np.ndarray
    keys: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        if self.centers.ndim != 2:
            raise DistanceError(f"centers must be (K, d), got {self.centers.shape}")
        if self.probs.shape != (self.centers.shape[0],):
            raise DistanceError(
                f"probs shape {self.probs.shape} does not match centers "
                f"{self.centers.shape}"
            )
        if self.keys is not None and self.keys.shape != self.probs.shape:
            raise DistanceError(
                f"keys shape {self.keys.shape} does not match probs {self.probs.shape}"
            )
        total = float(self.probs.sum())
        if not np.isclose(total, 1.0, atol=1e-8):
            raise DistanceError(f"probs must sum to 1, got {total}")

    @property
    def n_bins(self) -> int:
        """Number of occupied bins ``K``."""
        return int(self.centers.shape[0])

    @property
    def dim(self) -> int:
        """Dimensionality ``d``."""
        return int(self.centers.shape[1])


@dataclass(frozen=True, eq=False)
class HistogramGrid:
    """A frozen shared binning grid: standardisation frame plus bin edges.

    The grid is the part of a binner call that requires global knowledge
    (the reference frame and the support-covering edges); once frozen, bin
    assignment is a pure per-row function, which is what makes histogram
    counts *mergeable*: accumulating a sample slab by slab and merging the
    integer counts is bitwise-identical to binning the pooled sample in one
    shot (per-row standardisation and bin lookup are elementwise, and
    integer counts add exactly).
    """

    shift: np.ndarray
    scale: np.ndarray
    edges: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        d = len(self.edges)
        if self.shift.shape != (d,) or self.scale.shape != (d,):
            raise DistanceError(
                f"frame shapes {self.shift.shape}/{self.scale.shape} do not "
                f"match {d} edge arrays"
            )
        for e in self.edges:
            if e.ndim != 1 or e.size < 2:
                raise DistanceError("each edge array needs at least two edges")

    @property
    def dim(self) -> int:
        """Dimensionality ``d``."""
        return len(self.edges)

    @property
    def dims(self) -> np.ndarray:
        """``(d,)`` bin counts per dimension."""
        return np.array([e.size - 1 for e in self.edges], dtype=np.int64)

    def standardize(self, rows: np.ndarray) -> np.ndarray:
        """Map raw rows into the grid's standardised coordinates."""
        return (np.asarray(rows, dtype=float) - self.shift) / self.scale

    def keys_for(self, rows: np.ndarray, standardized: bool = False) -> np.ndarray:
        """Flat grid key of every row (out-of-range rows clip to edge bins)."""
        sample = np.asarray(rows, dtype=float)
        if sample.ndim != 2 or sample.shape[1] != self.dim:
            raise DistanceError(
                f"rows must be (N, {self.dim}), got shape {sample.shape}"
            )
        if not standardized:
            sample = self.standardize(sample)
        dims = self.dims
        flat = np.zeros(sample.shape[0], dtype=np.int64)
        for j, e in enumerate(self.edges):
            k = np.searchsorted(e, sample[:, j], side="right") - 1
            flat = flat * dims[j] + np.clip(k, 0, e.size - 2)
        return flat

    def centers_for(self, keys: np.ndarray) -> np.ndarray:
        """``(K, d)`` bin-centre coordinates of the given flat keys."""
        dims = self.dims
        centers_1d = [0.5 * (e[:-1] + e[1:]) for e in self.edges]
        centers = np.empty((keys.size, self.dim))
        remaining = keys.copy()
        for j in range(self.dim - 1, -1, -1):
            centers[:, j] = centers_1d[j][remaining % dims[j]]
            remaining = remaining // dims[j]
        return centers

    def matches(self, other: "HistogramGrid") -> bool:
        """Whether two grids define the exact same frame and edges."""
        return self is other or (
            np.array_equal(self.shift, other.shift)
            and np.array_equal(self.scale, other.scale)
            and len(self.edges) == len(other.edges)
            and all(np.array_equal(a, b) for a, b in zip(self.edges, other.edges))
        )

    def accumulator(self) -> "HistogramAccumulator":
        """A fresh mergeable count accumulator on this grid."""
        return HistogramAccumulator(self)

    def histogram(self, sample: np.ndarray, standardized: bool = False) -> SparseHistogram:
        """One-shot histogram of a sample.

        Equivalent to ``accumulator().add(sample).finalize()`` bit for bit
        (``np.unique`` already returns sorted keys with exact counts), but
        fully vectorised — this is the per-replication hot path, and the
        dict fold exists for genuine slab merging, not for single samples.
        """
        keys, counts = np.unique(
            self.keys_for(sample, standardized=standardized), return_counts=True
        )
        if keys.size == 0:
            raise DistanceError("cannot histogram an empty sample")
        return SparseHistogram(
            centers=self.centers_for(keys),
            probs=counts / counts.sum(),
            keys=keys,
        )


class HistogramAccumulator:
    """Mergeable integer bin counts over one :class:`HistogramGrid`.

    ``add`` folds one slab of rows, ``merge`` combines accumulators built on
    the same grid (e.g. by parallel shard workers), ``finalize`` emits the
    :class:`SparseHistogram`. Because counts are exact integers and bin
    assignment is per-row, *any* slab/merge order yields the histogram the
    one-shot binner would produce — bit for bit.
    """

    __slots__ = ("grid", "_counts")

    def __init__(self, grid: HistogramGrid):
        self.grid = grid
        self._counts: dict[int, int] = {}

    @property
    def total(self) -> int:
        """Total number of accumulated rows."""
        return sum(self._counts.values())

    def add(self, rows: np.ndarray, standardized: bool = False) -> "HistogramAccumulator":
        """Fold one ``(N, d)`` slab of rows into the counts."""
        rows = np.asarray(rows, dtype=float)
        if rows.shape[0] == 0:
            return self
        keys, counts = np.unique(
            self.grid.keys_for(rows, standardized=standardized), return_counts=True
        )
        for key, count in zip(keys.tolist(), counts.tolist()):
            self._counts[key] = self._counts.get(key, 0) + count
        return self

    def merge(self, other: "HistogramAccumulator") -> "HistogramAccumulator":
        """Fold another accumulator's counts into this one (same grid)."""
        if not self.grid.matches(other.grid):
            raise DistanceError("cannot merge accumulators on different grids")
        for key, count in other._counts.items():
            self._counts[key] = self._counts.get(key, 0) + count
        return self

    def finalize(self) -> SparseHistogram:
        """The accumulated counts as a normalised :class:`SparseHistogram`."""
        if not self._counts:
            raise DistanceError("cannot finalize an empty histogram")
        keys = np.array(sorted(self._counts), dtype=np.int64)
        counts = np.array([self._counts[int(k)] for k in keys], dtype=np.int64)
        return SparseHistogram(
            centers=self.grid.centers_for(keys),
            probs=counts / counts.sum(),
            keys=keys,
        )


#: Bounded memo of reference standardisation frames, keyed by sample content.
#: Sweeps that score many panels against one shared dirty reference (the
#: Figure-7 cost sweep; repeated Table-1 cells) re-derive the same mean/std
#: every call — the cache returns the previously computed frame instead.
#: Guarded by a lock: the thread backend fans distortion calls across
#: threads, and an unguarded move_to_end can race a concurrent eviction.
#: Sized so a full paper-scale sweep cell (R = 50 distinct replication
#: references, plus panel churn) fits between reuses — a smaller LRU would
#: evict every sweep entry before its next fraction run needs it. Entries
#: are two (d,)-float arrays, so even full the cache is a few KiB.
_FRAME_CACHE: "OrderedDict[tuple, tuple[np.ndarray, np.ndarray]]" = OrderedDict()
_FRAME_CACHE_MAX = 256
_FRAME_CACHE_LOCK = threading.Lock()


def clear_frame_cache() -> None:
    """Drop all memoised reference frames (mainly for tests)."""
    with _FRAME_CACHE_LOCK:
        _FRAME_CACHE.clear()


def _frame_cache_key(p: np.ndarray) -> Optional[tuple]:
    if not p.flags.c_contiguous or p.size > 4_000_000:
        return None  # hashing a copy of a huge array would cost more than it saves
    return (p.shape, hashlib.sha1(p.tobytes()).hexdigest())


class HistogramBinner:
    """Bins two samples on a shared grid.

    Parameters
    ----------
    n_bins:
        Bins per dimension.
    binning:
        ``"quantile"`` (default) places edges at pooled-sample quantiles, so
        resolution follows the data even under the heavy tails our dirty data
        exhibit; ``"uniform"`` uses equal-width bins over the pooled range.
    standardize:
        When True (default), coordinates are first centred on the *reference*
        sample's mean and scaled by its standard deviation. Distances
        computed on bin centres are then scale-free and comparable across
        replications — without this, EMD on raw network data would be
        dominated by the largest-magnitude attribute. The plain (non-robust)
        standard deviation is deliberate: for a distribution that is a tight
        bulk plus a heavy tail (our Attribute 3), a robust scale such as the
        IQR collapses to the bulk width and any tail movement then costs an
        enormous number of scale units, swamping every other signal.
    """

    def __init__(
        self,
        n_bins: int = 8,
        binning: str = "quantile",
        standardize: bool = True,
    ):
        self.n_bins = check_positive_int(n_bins, "n_bins")
        if binning not in ("quantile", "uniform"):
            raise DistanceError(f"binning must be quantile/uniform, got {binning!r}")
        self.binning = binning
        self.standardize = standardize

    # -- public API -----------------------------------------------------------

    def histogram_pair(
        self, p: np.ndarray, q: np.ndarray
    ) -> tuple[SparseHistogram, SparseHistogram]:
        """Histogram both samples on a grid covering their union support.

        The reference for standardisation is *p* (in the distortion setting:
        the dirty data set), so the coordinate system does not drift with the
        cleaning strategy under evaluation.
        """
        hp, hqs = self.histogram_group(p, [q])
        return hp, hqs[0]

    def histogram_group(
        self, p: np.ndarray, qs: "list[np.ndarray]"
    ) -> tuple[SparseHistogram, list[SparseHistogram]]:
        """Histogram a reference against many candidates on ONE shared grid.

        The grid spans the pooled union of the reference and *every*
        candidate (the paper's "bins covering this support"), and the
        reference is standardised and binned exactly once — the histogram
        cache that lets :func:`~repro.distance.emd.pairwise_emd` score a
        whole strategy panel without re-binning the dirty sample per
        strategy. With a single candidate this reduces to
        :meth:`histogram_pair` bit for bit; with several, bin widths are a
        function of the whole group (an extreme-ranged candidate coarsens
        everyone's bins), which is what makes the group's distances
        mutually comparable — and what distinguishes a group value from a
        sequence of independent :meth:`histogram_pair` calls.
        """
        p = np.asarray(p, dtype=float)
        qs = [np.asarray(q, dtype=float) for q in qs]
        if not qs:
            raise DistanceError("histogram_group needs at least one candidate")
        for q in qs:
            if p.ndim != 2 or q.ndim != 2 or p.shape[1] != q.shape[1]:
                raise DistanceError(
                    f"samples must be (N, d) with matching d, got {p.shape} "
                    f"and {q.shape}"
                )
        shift, scale = self._reference_frame(p)
        ps = (p - shift) / scale
        qss = [(q - shift) / scale for q in qs]
        grid = HistogramGrid(
            shift=shift,
            scale=scale,
            edges=tuple(self._edges(np.concatenate([ps, *qss], axis=0))),
        )
        hp = grid.histogram(ps, standardized=True)
        return hp, [grid.histogram(q, standardized=True) for q in qss]

    def make_grid(self, p: np.ndarray, qs: Sequence[np.ndarray] = ()) -> HistogramGrid:
        """Freeze the shared grid one :meth:`histogram_group` call would use.

        The frame comes from the reference *p* alone; the edges span the
        pooled union of the reference and every candidate. The returned
        :class:`HistogramGrid` is the mergeable-histogram entry point: slab
        accumulation on it is bitwise-identical to the one-shot group call.
        """
        p = np.asarray(p, dtype=float)
        if p.ndim != 2:
            raise DistanceError(f"sample must be (N, d), got {p.shape}")
        qs = [np.asarray(q, dtype=float) for q in qs]
        shift, scale = self._reference_frame(p)
        pooled = np.concatenate(
            [(p - shift) / scale] + [(q - shift) / scale for q in qs], axis=0
        )
        return HistogramGrid(
            shift=shift, scale=scale, edges=tuple(self._edges(pooled))
        )

    def grid_from_stats(
        self,
        shift: np.ndarray,
        scale: np.ndarray,
        mins: np.ndarray,
        maxs: np.ndarray,
    ) -> HistogramGrid:
        """A grid from streamed sufficient statistics instead of pooled rows.

        ``mins``/``maxs`` are the per-dimension bounds of the *standardised*
        union support (running ``minimum``/``maximum`` folds are exact, so
        streamed bounds equal pooled bounds bit for bit). Only uniform
        binning can be frozen from statistics — quantile edges need the full
        pooled sample by definition.
        """
        if self.binning != "uniform":
            raise DistanceError(
                "grid_from_stats requires uniform binning; quantile edges "
                "need the pooled sample"
            )
        shift = np.asarray(shift, dtype=float)
        scale = np.asarray(scale, dtype=float)
        mins = np.asarray(mins, dtype=float)
        maxs = np.asarray(maxs, dtype=float)
        edges = [
            self._uniform_edges(float(lo), float(hi)) for lo, hi in zip(mins, maxs)
        ]
        return HistogramGrid(shift=shift, scale=scale, edges=tuple(edges))

    def grid_from_sketches(
        self,
        shift: np.ndarray,
        scale: np.ndarray,
        sketches: Sequence,
    ) -> HistogramGrid:
        """A grid whose edges come from streamed per-dimension ECDF sketches.

        The quantile-binning counterpart of :meth:`grid_from_stats`:
        *sketches* holds one :class:`~repro.stats.ecdf.EcdfSketch` of each
        dimension's **raw** reference values. Edges replay the pooled
        :meth:`_edges` arithmetic on the standardised reference column —
        the sketch values are mapped through the frame elementwise (the
        same ``(x - shift) / scale`` every pooled row would see), the
        support read off the mapped extremes, and quantile edges taken with
        :meth:`EcdfSketch.quantile`, which replays ``np.quantile`` bit for
        bit in exact mode. Uniform binning falls through to the same
        equal-width edges :meth:`_edges` would produce.

        The grid spans the *reference* support only (the documented
        streaming semantics — the pooled path's edges span the union of
        reference and candidates), and with compressed sketches edges
        inherit the sketch's rank-error tolerance.
        """
        shift = np.asarray(shift, dtype=float)
        scale = np.asarray(scale, dtype=float)
        if len(sketches) != shift.shape[0]:
            raise DistanceError(
                f"got {len(sketches)} sketches for {shift.shape[0]} dimensions"
            )
        edges = []
        for j, sketch in enumerate(sketches):
            if sketch.n == 0:
                raise DistanceError(
                    f"dimension {j} has no finite reference values to bin"
                )
            raw_lo, raw_hi = sketch.support
            lo = (raw_lo - shift[j]) / scale[j]
            hi = (raw_hi - shift[j]) / scale[j]
            if lo == hi or self.binning == "uniform":
                e = self._uniform_edges(lo, hi)
            else:
                qs = np.linspace(0.0, 1.0, self.n_bins + 1)
                standardized = EcdfSketch(sketch.max_size)
                standardized.merge(sketch)
                standardized._consolidate()
                standardized._values = (standardized._values - shift[j]) / scale[j]
                e = np.unique(standardized.quantile(qs))
                if e.size < 2:
                    e = np.array([lo - 0.5, hi + 0.5])
            edges.append(e)
        return HistogramGrid(shift=shift, scale=scale, edges=tuple(edges))

    def reference_frame(self, p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-dimension ``(shift, scale)`` of the standardisation frame.

        Identity when ``standardize=False``; otherwise the reference
        sample's mean and (non-robust) standard deviation.
        """
        p = np.asarray(p, dtype=float)
        if p.ndim != 2:
            raise DistanceError(f"sample must be (N, d), got {p.shape}")
        return self._reference_frame(p)

    # -- internals ------------------------------------------------------------

    def _reference_frame(self, p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if not self.standardize:
            d = p.shape[1]
            return np.zeros(d), np.ones(d)
        key = _frame_cache_key(p)
        if key is not None:
            with _FRAME_CACHE_LOCK:
                cached = _FRAME_CACHE.get(key)
                if cached is not None:
                    _FRAME_CACHE.move_to_end(key)
                    return cached
        shift = p.mean(axis=0)
        scale = p.std(axis=0)
        scale = np.where(scale > 0, scale, 1.0)
        if key is not None:
            with _FRAME_CACHE_LOCK:
                _FRAME_CACHE[key] = (shift, scale)
                while len(_FRAME_CACHE) > _FRAME_CACHE_MAX:
                    _FRAME_CACHE.popitem(last=False)
        return shift, scale

    def _uniform_edges(self, lo: float, hi: float) -> np.ndarray:
        if lo == hi:
            # Degenerate dimension: a single bin centred on the value.
            return np.array([lo - 0.5, hi + 0.5])
        return np.linspace(lo, hi, self.n_bins + 1)

    def _edges(self, pooled: np.ndarray) -> list[np.ndarray]:
        edges = []
        for j in range(pooled.shape[1]):
            col = pooled[:, j]
            lo, hi = float(col.min()), float(col.max())
            if lo == hi or self.binning == "uniform":
                e = self._uniform_edges(lo, hi)
            else:
                qs = np.linspace(0.0, 1.0, self.n_bins + 1)
                e = np.unique(np.quantile(col, qs))
                if e.size < 2:
                    e = np.array([lo - 0.5, hi + 0.5])
            edges.append(e)
        return edges
