"""Kullback-Leibler and Jensen-Shannon divergences on a shared binning.

Definition 1 lists KL as an alternative distortion measure. Empirical KL on
histograms requires smoothing (a cleaned bin with zero dirty mass would blow
up the divergence); we use additive (Laplace) smoothing with a configurable
pseudo-count.
"""

from __future__ import annotations

import numpy as np

from repro.distance.base import Distance
from repro.distance.histogram import HistogramBinner
from repro.errors import DistanceError

__all__ = ["KLDivergence", "JensenShannonDistance"]


def _aligned_probs(
    binner: HistogramBinner, p: np.ndarray, q: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram both samples and align their bins on a common index."""
    hp, hq = binner.histogram_pair(p, q)
    # Bin centres are exact grid coordinates, so byte-level keys align them.
    keys = {}
    for c in np.vstack([hp.centers, hq.centers]):
        keys.setdefault(c.tobytes(), len(keys))
    ap = np.zeros(len(keys))
    aq = np.zeros(len(keys))
    for c, w in zip(hp.centers, hp.probs):
        ap[keys[c.tobytes()]] = w
    for c, w in zip(hq.centers, hq.probs):
        aq[keys[c.tobytes()]] = w
    return ap, aq


class KLDivergence(Distance):
    """Smoothed histogram KL divergence ``KL(P || Q)``.

    Parameters
    ----------
    n_bins, binning, standardize:
        Forwarded to :class:`HistogramBinner` (shared support, like EMD).
    pseudo_count:
        Additive smoothing mass per bin (default 0.5, Jeffreys-style).
    symmetrized:
        When True, returns ``(KL(P||Q) + KL(Q||P)) / 2``.
    """

    name = "kl"

    def __init__(
        self,
        n_bins: int = 8,
        binning: str = "quantile",
        standardize: bool = True,
        pseudo_count: float = 0.5,
        symmetrized: bool = False,
    ):
        if pseudo_count <= 0:
            raise DistanceError("pseudo_count must be positive (KL needs smoothing)")
        self.binner = HistogramBinner(n_bins=n_bins, binning=binning, standardize=standardize)
        self.pseudo_count = float(pseudo_count)
        self.symmetrized = symmetrized

    def _kl(self, a: np.ndarray, b: np.ndarray) -> float:
        k = a.size
        a = (a * 1.0 + self.pseudo_count / k) / (1.0 + self.pseudo_count)
        b = (b * 1.0 + self.pseudo_count / k) / (1.0 + self.pseudo_count)
        return float(np.sum(a * np.log(a / b)))

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        ap, aq = _aligned_probs(self.binner, p, q)
        if self.symmetrized:
            return 0.5 * (self._kl(ap, aq) + self._kl(aq, ap))
        return self._kl(ap, aq)


class JensenShannonDistance(Distance):
    """Jensen-Shannon *distance* (square root of JS divergence, natural log).

    Bounded by ``sqrt(log 2)`` and symmetric — a better-behaved cousin of KL
    for reporting, included as an extension.
    """

    name = "js"

    def __init__(
        self, n_bins: int = 8, binning: str = "quantile", standardize: bool = True
    ):
        self.binner = HistogramBinner(n_bins=n_bins, binning=binning, standardize=standardize)

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        ap, aq = _aligned_probs(self.binner, p, q)
        mix = 0.5 * (ap + aq)

        def kl_to_mix(a: np.ndarray) -> float:
            mask = a > 0
            return float(np.sum(a[mask] * np.log(a[mask] / mix[mask])))

        js = 0.5 * kl_to_mix(ap) + 0.5 * kl_to_mix(aq)
        return float(np.sqrt(max(js, 0.0)))
