"""Kullback-Leibler and Jensen-Shannon divergences on a shared binning.

Definition 1 lists KL as an alternative distortion measure. Empirical KL on
histograms requires smoothing (a cleaned bin with zero dirty mass would blow
up the divergence); we use additive (Laplace) smoothing with a configurable
per-bin pseudo-count.

Both divergences are pure functions of bin masses on a shared grid, which
makes them **streaming-native**: the frozen-grid count accumulators of
:mod:`repro.distance.histogram` feed :meth:`between_histograms_batch`
directly, and :class:`~repro.core.distortion.StreamingDistortion` scores a
whole candidate panel without pooling a sample array (count folding is
bitwise-exact, so within-support uniform-binning streams equal the pooled
path exactly; quantile binning streams too, its edges replayed bitwise
from ECDF order-statistic sketches — see the README distance table for
the tolerance contract).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distance.base import Distance, clean_panel
from repro.distance.histogram import HistogramBinner, SparseHistogram
from repro.errors import DistanceError

__all__ = ["KLDivergence", "JensenShannonDistance", "aligned_probs"]


def aligned_probs(
    hp: SparseHistogram, hq: SparseHistogram
) -> tuple[np.ndarray, np.ndarray]:
    """Align two same-grid histograms' masses on their union of occupied bins.

    Alignment is by the histograms' shared-grid ``keys`` (flat bin indices
    from one binner call), never by bin-centre coordinates: coordinate keys
    break whenever distinct byte patterns compare equal as floats (``-0.0``
    vs ``0.0``), silently splitting one bin into two and inflating any
    divergence computed on the result.
    """
    if hp.keys is None or hq.keys is None:
        raise DistanceError(
            "aligned_probs needs histograms carrying shared-grid keys "
            "(produced by the same binner call / HistogramGrid)"
        )
    keys = np.union1d(hp.keys, hq.keys)
    ap = np.zeros(keys.size)
    aq = np.zeros(keys.size)
    ap[np.searchsorted(keys, hp.keys)] = hp.probs
    aq[np.searchsorted(keys, hq.keys)] = hq.probs
    return ap, aq


class KLDivergence(Distance):
    """Smoothed histogram KL divergence ``KL(P || Q)``.

    Parameters
    ----------
    n_bins, binning, standardize:
        Forwarded to :class:`HistogramBinner` (shared support, like EMD).
        Both binnings are streaming-capable: uniform grids freeze from
        streamed moments, and quantile edges replay ``np.quantile`` bitwise
        from per-dimension :class:`~repro.stats.ecdf.EcdfSketch` order
        statistics folded over the reference slabs.
    pseudo_count:
        Additive smoothing mass added to **each** occupied-union bin: with
        ``k`` bins in the union, a bin mass ``m`` becomes
        ``(m + pseudo_count) / (1 + k * pseudo_count)``. The default 1e-4
        is a Jeffreys-style half-count at the framework's typical pooled
        sample sizes (0.5 / ~5000 rows) — small enough that the smoothing
        mass stays well below the data mass at any realistic bin count,
        large enough to keep a zero-mass candidate bin finite.
    symmetrized:
        When True, returns ``(KL(P||Q) + KL(Q||P)) / 2``.
    """

    name = "kl"

    def __init__(
        self,
        n_bins: int = 8,
        binning: str = "quantile",
        standardize: bool = True,
        pseudo_count: float = 1e-4,
        symmetrized: bool = False,
    ):
        if pseudo_count <= 0:
            raise DistanceError("pseudo_count must be positive (KL needs smoothing)")
        self.binner = HistogramBinner(n_bins=n_bins, binning=binning, standardize=standardize)
        self.pseudo_count = float(pseudo_count)
        self.symmetrized = symmetrized

    def _kl(self, a: np.ndarray, b: np.ndarray) -> float:
        # Per-bin additive smoothing: add pseudo_count to every one of the
        # k union bins, then renormalise by the total added mass.
        k = a.size
        norm = 1.0 + k * self.pseudo_count
        a = (a + self.pseudo_count) / norm
        b = (b + self.pseudo_count) / norm
        return float(np.sum(a * np.log(a / b)))

    def _from_pair(self, hp: SparseHistogram, hq: SparseHistogram) -> float:
        ap, aq = aligned_probs(hp, hq)
        if self.symmetrized:
            return 0.5 * (self._kl(ap, aq) + self._kl(aq, ap))
        return self._kl(ap, aq)

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        hp, hq = self.binner.histogram_pair(p, q)
        return self._from_pair(hp, hq)

    def pairwise(self, p: np.ndarray, qs: Sequence[np.ndarray]) -> list[float]:
        """KL from one reference to each candidate on ONE shared grid.

        Panel semantics match :meth:`EarthMoverDistance.pairwise
        <repro.distance.emd.EarthMoverDistance.pairwise>`: the grid spans
        the pooled union support of the whole group and the reference is
        binned once — with a single candidate this equals :meth:`compute`
        bit for bit.
        """
        if not qs:
            return []
        hp, hqs = _panel_histograms(self.binner, p, qs)
        return self.between_histograms_batch(hp, hqs)

    def between_histograms_batch(
        self, hp: SparseHistogram, hqs: Sequence[SparseHistogram]
    ) -> list[float]:
        """Divergence of each candidate histogram from the reference.

        The streaming entry point: *hp*/*hqs* may come from one binner call
        or from :class:`~repro.distance.histogram.HistogramAccumulator`
        folds on a frozen grid — only the accumulated bin masses matter.
        """
        return [self._from_pair(hp, hq) for hq in hqs]


class JensenShannonDistance(Distance):
    """Jensen-Shannon *distance* (square root of JS divergence, natural log).

    Bounded by ``sqrt(log 2)`` and symmetric — a better-behaved cousin of KL
    for reporting, included as an extension. Streaming-capable under both
    binnings exactly like :class:`KLDivergence` (quantile edges come from
    streamed ECDF sketches, uniform grids from streamed moments).
    """

    name = "js"

    def __init__(
        self, n_bins: int = 8, binning: str = "quantile", standardize: bool = True
    ):
        self.binner = HistogramBinner(n_bins=n_bins, binning=binning, standardize=standardize)

    def _from_pair(self, hp: SparseHistogram, hq: SparseHistogram) -> float:
        ap, aq = aligned_probs(hp, hq)
        mix = 0.5 * (ap + aq)

        def kl_to_mix(a: np.ndarray) -> float:
            mask = a > 0
            return float(np.sum(a[mask] * np.log(a[mask] / mix[mask])))

        js = 0.5 * kl_to_mix(ap) + 0.5 * kl_to_mix(aq)
        return float(np.sqrt(max(js, 0.0)))

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        hp, hq = self.binner.histogram_pair(p, q)
        return self._from_pair(hp, hq)

    def pairwise(self, p: np.ndarray, qs: Sequence[np.ndarray]) -> list[float]:
        """Shared-grid panel form; see :meth:`KLDivergence.pairwise`."""
        if not qs:
            return []
        hp, hqs = _panel_histograms(self.binner, p, qs)
        return self.between_histograms_batch(hp, hqs)

    def between_histograms_batch(
        self, hp: SparseHistogram, hqs: Sequence[SparseHistogram]
    ) -> list[float]:
        """JS distance of each candidate histogram from the reference."""
        return [self._from_pair(hp, hq) for hq in hqs]


def _panel_histograms(
    binner: HistogramBinner, p: np.ndarray, qs: Sequence[np.ndarray]
) -> tuple[SparseHistogram, list[SparseHistogram]]:
    """Validated shared-grid histograms of a reference and its panel."""
    p, cleaned = clean_panel(p, qs)
    return binner.histogram_group(p, cleaned)
