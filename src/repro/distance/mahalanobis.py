"""Mahalanobis distance between distribution means.

Definition 1's third suggested distance: the Mahalanobis distance between the
two samples' mean vectors under the reference (first) sample's covariance.
It only sees first/second moments — the benches use it to show why a
transport-based distance is the better distortion metric (a mean-preserving
spike, e.g. mean imputation, is nearly invisible to it).
"""

from __future__ import annotations

import numpy as np

from repro.distance.base import Distance
from repro.errors import DistanceError

__all__ = ["MahalanobisDistance"]


class MahalanobisDistance(Distance):
    """``sqrt((mu_p - mu_q)' S^-1 (mu_p - mu_q))`` with ``S`` from sample p.

    Parameters
    ----------
    ridge:
        Diagonal regulariser added to the covariance (relative to its trace)
        so near-singular covariances stay invertible.
    """

    name = "mahalanobis"

    def __init__(self, ridge: float = 1e-8):
        if ridge < 0:
            raise DistanceError("ridge must be >= 0")
        self.ridge = float(ridge)

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        if p.shape[0] < 2:
            raise DistanceError("reference sample needs at least 2 rows")
        mu_p = p.mean(axis=0)
        mu_q = q.mean(axis=0)
        cov = np.cov(p, rowvar=False)
        cov = np.atleast_2d(cov)
        d = cov.shape[0]
        scale = np.trace(cov) / d if np.trace(cov) > 0 else 1.0
        cov = cov + self.ridge * scale * np.eye(d)
        try:
            sol = np.linalg.solve(cov, mu_p - mu_q)
        except np.linalg.LinAlgError:
            raise DistanceError("covariance is singular; increase ridge") from None
        val = float((mu_p - mu_q) @ sol)
        return float(np.sqrt(max(val, 0.0)))
