"""Approximate EMD variants.

The paper cites Shirdhonkar & Jacobs [13] and Applegate et al. [1] as
evidence that EMD "is computationally feasible"; these approximations trade a
little accuracy for large constant-factor speedups and serve as ablations for
the exact solver:

* :class:`SlicedEmd` — average exact 1-D EMD over random unit projections
  (the sliced-Wasserstein distance). Converges to a metric equivalent to EMD
  and preserves orderings extremely well.
* :class:`MarginalEmd` — mean of the per-dimension 1-D EMDs. A lower-bound
  flavoured proxy: it ignores cross-attribute structure but is the cheapest
  defensible distortion measure.
"""

from __future__ import annotations

import numpy as np

from repro.distance.base import Distance
from repro.distance.emd import emd_1d
from repro.utils.rng import Seed, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["SlicedEmd", "MarginalEmd"]


def _reference_standardize(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Standardise both samples by p's mean/std (matching the EMD binner)."""
    shift = p.mean(axis=0)
    scale = p.std(axis=0)
    scale = np.where(scale > 0, scale, 1.0)
    return (p - shift) / scale, (q - shift) / scale


class SlicedEmd(Distance):
    """Sliced-Wasserstein approximation of the EMD.

    Averages the exact 1-D EMD of the two samples projected onto
    ``n_projections`` random directions on the unit sphere. Deterministic for
    a fixed seed.
    """

    name = "sliced_emd"

    def __init__(self, n_projections: int = 64, seed: Seed = 0, standardize: bool = True):
        self.n_projections = check_positive_int(n_projections, "n_projections")
        self._seed = seed
        self.standardize = standardize

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        if self.standardize:
            p, q = _reference_standardize(p, q)
        d = p.shape[1]
        if d == 1:
            return emd_1d(p.ravel(), q.ravel())
        rng = as_generator(self._seed)
        directions = rng.normal(size=(self.n_projections, d))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        total = 0.0
        for u in directions:
            total += emd_1d(p @ u, q @ u)
        return total / self.n_projections


class MarginalEmd(Distance):
    """Mean of per-attribute exact 1-D EMDs (ignores joint structure)."""

    name = "marginal_emd"

    def __init__(self, standardize: bool = True):
        self.standardize = standardize

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        if self.standardize:
            p, q = _reference_standardize(p, q)
        total = 0.0
        for j in range(p.shape[1]):
            total += emd_1d(p[:, j], q[:, j])
        return total / p.shape[1]
