"""Statistical distances between empirical distributions.

Definition 1 of the paper: statistical distortion is ``d(D, DC)`` for a
distributional distance ``d``; "possible distances are the Earth Mover's,
Kullback-Liebler or Mahalanobis distances" — all three are implemented here,
with EMD (Section 3.5) as the primary metric, plus approximate EMD variants
and a Kolmogorov-Smirnov extension.
"""

from repro.distance.base import Distance
from repro.distance.emd import EarthMoverDistance, emd_1d, pairwise_emd
from repro.distance.emd_approx import MarginalEmd, SlicedEmd
from repro.distance.histogram import (
    HistogramAccumulator,
    HistogramBinner,
    HistogramGrid,
    SparseHistogram,
)
from repro.distance.kl import JensenShannonDistance, KLDivergence
from repro.distance.ks import KolmogorovSmirnovDistance
from repro.distance.mahalanobis import MahalanobisDistance
from repro.distance.transport import (
    TransportResult,
    solve_transport,
    solve_transport_batch,
    transport_cost_1d,
)
from repro.errors import DistanceError

#: Registered distances by their short ``name`` identifier — the vocabulary
#: of every ``distance=`` selector string (``ExperimentConfig(distance=...)``,
#: the benches' ablation cells).
DISTANCES: dict[str, type] = {
    cls.name: cls
    for cls in (
        EarthMoverDistance,
        KLDivergence,
        JensenShannonDistance,
        KolmogorovSmirnovDistance,
        MahalanobisDistance,
        SlicedEmd,
        MarginalEmd,
    )
}


def parse_distance_spec(spec: str) -> str:
    """Validate and normalise a distance-selector name.

    Returns the lowercased, stripped name; raises
    :class:`~repro.errors.DistanceError` for unknown names so a typo in an
    :class:`~repro.core.framework.ExperimentConfig` fails at construction,
    not deep inside a run.
    """
    name = str(spec).strip().lower()
    if name not in DISTANCES:
        raise DistanceError(
            f"unknown distance {spec!r}; registered: {sorted(DISTANCES)}"
        )
    return name


def distance_by_name(spec: str, **kwargs) -> Distance:
    """Instantiate a registered distance from its ``name`` identifier.

    Keyword arguments are forwarded to the distance constructor
    (``distance_by_name("kl", binning="uniform")``).
    """
    return DISTANCES[parse_distance_spec(spec)](**kwargs)


__all__ = [
    "Distance",
    "DISTANCES",
    "distance_by_name",
    "parse_distance_spec",
    "EarthMoverDistance",
    "emd_1d",
    "pairwise_emd",
    "SlicedEmd",
    "MarginalEmd",
    "HistogramBinner",
    "HistogramGrid",
    "HistogramAccumulator",
    "SparseHistogram",
    "KLDivergence",
    "JensenShannonDistance",
    "KolmogorovSmirnovDistance",
    "MahalanobisDistance",
    "TransportResult",
    "solve_transport",
    "solve_transport_batch",
    "transport_cost_1d",
]
