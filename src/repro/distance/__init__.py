"""Statistical distances between empirical distributions.

Definition 1 of the paper: statistical distortion is ``d(D, DC)`` for a
distributional distance ``d``; "possible distances are the Earth Mover's,
Kullback-Liebler or Mahalanobis distances" — all three are implemented here,
with EMD (Section 3.5) as the primary metric, plus approximate EMD variants
and a Kolmogorov-Smirnov extension.
"""

from repro.distance.base import Distance
from repro.distance.emd import EarthMoverDistance, emd_1d, pairwise_emd
from repro.distance.emd_approx import MarginalEmd, SlicedEmd
from repro.distance.histogram import (
    HistogramAccumulator,
    HistogramBinner,
    HistogramGrid,
    SparseHistogram,
)
from repro.distance.kl import JensenShannonDistance, KLDivergence
from repro.distance.ks import KolmogorovSmirnovDistance
from repro.distance.mahalanobis import MahalanobisDistance
from repro.distance.transport import (
    TransportResult,
    solve_transport,
    solve_transport_batch,
    transport_cost_1d,
)

__all__ = [
    "Distance",
    "EarthMoverDistance",
    "emd_1d",
    "pairwise_emd",
    "SlicedEmd",
    "MarginalEmd",
    "HistogramBinner",
    "HistogramGrid",
    "HistogramAccumulator",
    "SparseHistogram",
    "KLDivergence",
    "JensenShannonDistance",
    "KolmogorovSmirnovDistance",
    "MahalanobisDistance",
    "TransportResult",
    "solve_transport",
    "solve_transport_batch",
    "transport_cost_1d",
]
