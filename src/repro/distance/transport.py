"""Transportation-problem solvers underlying the Earth Mover's Distance.

Section 3.5 defines EMD through the optimal flow
``F* = argmin_F sum_ij f_ij |b_i - b_j|`` subject to marginal constraints.
This module solves exactly that problem with three interchangeable backends:

* ``"simplex"`` — our own transportation simplex (northwest-corner start +
  MODI pivoting), dependency-free and exact; the reference implementation.
* ``"highs"`` — the LP formulation handed to scipy's HiGHS solver; fastest on
  large bin counts and the default for experiment-scale problems.
* ``"networkx"`` — min-cost flow on a scaled integer instance; approximate to
  the scaling resolution, used as an independent cross-check.

Tests assert that all three agree on random instances.

On the line the dense formulation is overkill: with ground distance
``|x - y|`` the optimal cost is the integral of ``|F - G|`` between the
marginals' CDFs, computed in closed form by :func:`transport_cost_1d`
without materialising a cost matrix or pivoting at all. The experiment
framework's distances route univariate histogram problems through it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TransportError

__all__ = [
    "TransportResult",
    "solve_transport",
    "solve_transport_batch",
    "transport_cost_1d",
]

_TOL = 1e-10


@dataclass(frozen=True)
class TransportResult:
    """Optimal flow plan and its cost.

    ``flow[i, j]`` is the mass moved from supply bin ``i`` to demand bin
    ``j``; ``cost`` is ``sum_ij flow[i, j] * cost_matrix[i, j]``.
    """

    flow: np.ndarray
    cost: float


def _validate(
    supply: np.ndarray, demand: np.ndarray, cost: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    supply = np.asarray(supply, dtype=float).ravel()
    demand = np.asarray(demand, dtype=float).ravel()
    cost = np.asarray(cost, dtype=float)
    if cost.shape != (supply.size, demand.size):
        raise TransportError(
            f"cost must be ({supply.size}, {demand.size}), got {cost.shape}"
        )
    if supply.size == 0 or demand.size == 0:
        raise TransportError("supply and demand must be non-empty")
    if np.any(supply < -_TOL) or np.any(demand < -_TOL):
        raise TransportError("supply and demand must be non-negative")
    if np.any(~np.isfinite(cost)):
        raise TransportError("cost matrix must be finite")
    ts, td = float(supply.sum()), float(demand.sum())
    if ts <= 0 or td <= 0:
        raise TransportError("total supply and demand must be positive")
    if not np.isclose(ts, td, rtol=1e-6, atol=1e-9):
        raise TransportError(f"unbalanced problem: supply={ts}, demand={td}")
    # Rescale exactly so both sides match to machine precision.
    return np.clip(supply, 0, None), np.clip(demand, 0, None) * (ts / td), cost


def solve_transport(
    supply: np.ndarray,
    demand: np.ndarray,
    cost: np.ndarray,
    backend: str = "auto",
) -> TransportResult:
    """Solve the balanced transportation problem.

    Parameters
    ----------
    supply, demand:
        Non-negative marginals with (approximately) equal totals.
    cost:
        ``(n, m)`` ground-distance matrix.
    backend:
        ``"simplex"``, ``"highs"``, ``"networkx"`` or ``"auto"`` (simplex for
        small instances where its pure-Python pivoting is cheap, HiGHS
        otherwise). Note :func:`solve_transport_batch` resolves ``"auto"``
        differently (always HiGHS) — degenerate optima may therefore return
        a different optimal *plan* (same cost up to round-off) between the
        single and batched entry points.
    """
    supply, demand, cost = _validate(supply, demand, cost)
    if backend == "auto":
        backend = "simplex" if supply.size * demand.size <= 400 else "highs"
    if backend == "simplex":
        return _solve_simplex(supply, demand, cost)
    if backend == "highs":
        return _solve_highs(supply, demand, cost)
    if backend == "networkx":
        return _solve_networkx(supply, demand, cost)
    raise TransportError(f"unknown backend {backend!r}")


def solve_transport_batch(
    instances: "list[tuple[np.ndarray, np.ndarray, np.ndarray]]",
    backend: str = "auto",
) -> "list[TransportResult]":
    """Solve many independent transportation problems in one call.

    ``instances`` is a list of ``(supply, demand, cost)`` triples. For the
    HiGHS backend (and ``"auto"``), all instances are assembled into a
    single **block-diagonal** LP and handed to the solver at once: the
    problems share no variables or constraints, so the LP is separable and
    its optimum is exactly the per-instance optima — but the per-call
    solver overhead, which dominates on the small residual problems the
    EMD mass cancellation produces, is paid once per batch instead of once
    per instance. Other backends fall back to a plain loop.

    ``"auto"`` here always means HiGHS — unlike :func:`solve_transport`,
    which routes small instances to the pure-Python simplex; batching
    exists precisely to amortise the solver-call overhead that made that
    small-instance special case worthwhile. Costs agree up to round-off;
    degenerate optimal *plans* may differ between the two entry points.
    """
    if not instances:
        return []
    if backend == "auto":
        backend = "highs"
    if backend != "highs":
        return [solve_transport(s, d, c, backend=backend) for s, d, c in instances]
    validated = [_validate(s, d, c) for s, d, c in instances]
    return _solve_highs_batch(validated)


def transport_cost_1d(
    supply_pos: np.ndarray,
    supply: np.ndarray,
    demand_pos: np.ndarray,
    demand: np.ndarray,
) -> float:
    """Exact optimal-transport cost between two weighted point sets on a line.

    With ground distance ``|x - y|`` the optimum equals
    ``total_mass * integral |F - G|`` where ``F``/``G`` are the normalised
    CDFs of the marginals — the same value ``solve_transport`` finds, at
    O((n+m) log(n+m)) instead of a dense LP solve. Fully vectorised.
    """
    sp = np.asarray(supply_pos, dtype=float).ravel()
    s = np.asarray(supply, dtype=float).ravel()
    dp = np.asarray(demand_pos, dtype=float).ravel()
    d = np.asarray(demand, dtype=float).ravel()
    if sp.size != s.size or dp.size != d.size:
        raise TransportError("positions and masses must have matching lengths")
    if sp.size == 0 or dp.size == 0:
        raise TransportError("supply and demand must be non-empty")
    if np.any(s < -_TOL) or np.any(d < -_TOL):
        raise TransportError("supply and demand must be non-negative")
    if np.any(~np.isfinite(sp)) or np.any(~np.isfinite(dp)):
        raise TransportError("positions must be finite")
    ts, td = float(s.sum()), float(d.sum())
    if ts <= 0 or td <= 0:
        raise TransportError("total supply and demand must be positive")
    if not np.isclose(ts, td, rtol=1e-6, atol=1e-9):
        raise TransportError(f"unbalanced problem: supply={ts}, demand={td}")
    s_order = np.argsort(sp, kind="stable")
    sp, s = sp[s_order], np.clip(s[s_order], 0.0, None)
    d_order = np.argsort(dp, kind="stable")
    dp, d = dp[d_order], np.clip(d[d_order], 0.0, None)
    grid = np.union1d(sp, dp)
    if grid.size == 1:
        return 0.0
    cum_s = np.concatenate([[0.0], np.cumsum(s)])
    cum_d = np.concatenate([[0.0], np.cumsum(d)])
    f = cum_s[np.searchsorted(sp, grid[:-1], side="right")] / ts
    g = cum_d[np.searchsorted(dp, grid[:-1], side="right")] / td
    return float(ts * np.sum(np.abs(f - g) * np.diff(grid)))


# ---------------------------------------------------------------------------
# HiGHS (scipy linprog) backend
# ---------------------------------------------------------------------------


def _solve_highs(
    supply: np.ndarray, demand: np.ndarray, cost: np.ndarray
) -> TransportResult:
    return _solve_highs_batch([(supply, demand, cost)])[0]


def _solve_highs_batch(
    validated: "list[tuple[np.ndarray, np.ndarray, np.ndarray]]",
) -> "list[TransportResult]":
    from scipy.optimize import linprog
    from scipy.sparse import coo_matrix

    # Per instance: variables x_ij laid out row-major. Row sums = supply,
    # column sums = demand; one redundant constraint is dropped for
    # numerical stability. Instances occupy disjoint variable/constraint
    # ranges, making the stacked LP block-diagonal (hence separable). The
    # constraint matrix is assembled as one vectorised COO triplet list
    # (two entries per variable, minus the dropped columns) — no Python-
    # level setitem loops.
    row_parts: list[np.ndarray] = []
    col_parts: list[np.ndarray] = []
    obj_parts: list[np.ndarray] = []
    b_parts: list[np.ndarray] = []
    spans: list[tuple[int, int, int]] = []
    var_off = 0
    row_off = 0
    for supply, demand, cost in validated:
        n, m = cost.shape
        var_rows, var_cols = np.divmod(np.arange(n * m), m)
        col_keep = var_cols < m - 1
        row_parts.append(row_off + var_rows)
        col_parts.append(var_off + np.arange(n * m))
        row_parts.append(row_off + n + var_cols[col_keep])
        col_parts.append(var_off + np.flatnonzero(col_keep))
        obj_parts.append(cost.ravel())
        b_parts.append(supply)
        b_parts.append(demand[:-1])
        spans.append((var_off, n, m))
        var_off += n * m
        row_off += n + m - 1
    rows = np.concatenate(row_parts)
    cols = np.concatenate(col_parts)
    a_eq = coo_matrix(
        (np.ones(rows.size), (rows, cols)), shape=(row_off, var_off)
    ).tocsr()
    # Presolve costs more than it saves on the small residual instances the
    # EMD cancellation produces; leave it on for genuinely large problems.
    options = {"presolve": False} if var_off <= 50_000 else None
    res = linprog(
        np.concatenate(obj_parts),
        A_eq=a_eq,
        b_eq=np.concatenate(b_parts),
        bounds=(0, None),
        method="highs",
        options=options,
    )
    if not res.success:  # pragma: no cover - HiGHS is reliable on feasible LPs
        raise TransportError(f"HiGHS failed: {res.message}")
    out = []
    for (off, n, m), (_, _, cost) in zip(spans, validated):
        flow = res.x[off : off + n * m].reshape(n, m)
        out.append(TransportResult(flow=flow, cost=float(np.sum(flow * cost))))
    return out


# ---------------------------------------------------------------------------
# networkx min-cost-flow backend (integer-scaled cross-check)
# ---------------------------------------------------------------------------

_NX_MASS_SCALE = 10**9
_NX_COST_SCALE = 10**6


def _integerize(weights: np.ndarray, scale: int) -> np.ndarray:
    """Round to integers at *scale* while preserving the exact total."""
    scaled = weights * scale
    floors = np.floor(scaled).astype(np.int64)
    residual = int(round(float(scaled.sum()))) - int(floors.sum())
    if residual > 0:
        # Distribute leftover units to the largest fractional parts.
        order = np.argsort(-(scaled - floors))
        floors[order[:residual]] += 1
    return floors


def _solve_networkx(
    supply: np.ndarray, demand: np.ndarray, cost: np.ndarray
) -> TransportResult:
    import networkx as nx

    n, m = cost.shape
    total = float(supply.sum())
    s_int = _integerize(supply / total, _NX_MASS_SCALE)
    d_int = _integerize(demand / total, _NX_MASS_SCALE)
    graph = nx.DiGraph()
    for i in range(n):
        graph.add_node(("s", i), demand=-int(s_int[i]))
    for j in range(m):
        graph.add_node(("d", j), demand=int(d_int[j]))
    int_cost = np.rint(cost * _NX_COST_SCALE).astype(np.int64)
    for i in range(n):
        for j in range(m):
            graph.add_edge(("s", i), ("d", j), weight=int(int_cost[i, j]))
    flow_dict = nx.min_cost_flow(graph)
    flow = np.zeros((n, m))
    for i in range(n):
        for (kind, j), f in flow_dict.get(("s", i), {}).items():
            if kind == "d":
                flow[i, j] = f * total / _NX_MASS_SCALE
    return TransportResult(flow=flow, cost=float(np.sum(flow * cost)))


# ---------------------------------------------------------------------------
# Transportation simplex (reference implementation)
# ---------------------------------------------------------------------------


def _northwest_corner(
    supply: np.ndarray, demand: np.ndarray
) -> tuple[dict[tuple[int, int], float], list[tuple[int, int]]]:
    """Initial basic feasible solution with exactly n+m-1 basic cells."""
    n, m = supply.size, demand.size
    a = supply.copy()
    b = demand.copy()
    flow: dict[tuple[int, int], float] = {}
    basis: list[tuple[int, int]] = []
    i = j = 0
    while True:
        q = min(a[i], b[j])
        flow[(i, j)] = q
        basis.append((i, j))
        a[i] -= q
        b[j] -= q
        if i == n - 1 and j == m - 1:
            break
        if a[i] <= _TOL and i < n - 1:
            i += 1
        else:
            j += 1
    return flow, basis


def _compute_duals(
    basis: list[tuple[int, int]], cost: np.ndarray, n: int, m: int
) -> tuple[np.ndarray, np.ndarray]:
    """Solve ``u_i + v_j = c_ij`` over the basis tree (u_0 = 0)."""
    u = np.full(n, np.nan)
    v = np.full(m, np.nan)
    rows: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    cols: list[list[tuple[int, int]]] = [[] for _ in range(m)]
    for cell in basis:
        rows[cell[0]].append(cell)
        cols[cell[1]].append(cell)
    u[0] = 0.0
    stack: list[tuple[str, int]] = [("r", 0)]
    while stack:
        kind, k = stack.pop()
        if kind == "r":
            for (i, j) in rows[k]:
                if np.isnan(v[j]):
                    v[j] = cost[i, j] - u[i]
                    stack.append(("c", j))
        else:
            for (i, j) in cols[k]:
                if np.isnan(u[i]):
                    u[i] = cost[i, j] - v[j]
                    stack.append(("r", i))
    if np.any(np.isnan(u)) or np.any(np.isnan(v)):  # pragma: no cover
        raise TransportError("basis graph is not connected; degenerate pivot bug")
    return u, v


def _find_cycle(
    basis: list[tuple[int, int]], entering: tuple[int, int], n: int, m: int
) -> list[tuple[int, int]]:
    """Unique alternating cycle created by adding *entering* to the basis.

    Returns the cycle as a cell list starting with *entering*; signs
    alternate +, -, +, ... along the list.
    """
    rows: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    cols: list[list[tuple[int, int]]] = [[] for _ in range(m)]
    for cell in basis:
        rows[cell[0]].append(cell)
        cols[cell[1]].append(cell)
    # Path in the bipartite basis tree from row-node entering[0] to col-node
    # entering[1]; BFS with parent tracking.
    start = ("r", entering[0])
    goal = ("c", entering[1])
    parents: dict[tuple[str, int], tuple[tuple[str, int], tuple[int, int]]] = {}
    seen = {start}
    frontier = [start]
    while frontier and goal not in parents:
        nxt = []
        for node in frontier:
            kind, k = node
            cells = rows[k] if kind == "r" else cols[k]
            for cell in cells:
                neighbor = ("c", cell[1]) if kind == "r" else ("r", cell[0])
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                parents[neighbor] = (node, cell)
                nxt.append(neighbor)
        frontier = nxt
    if goal not in parents:  # pragma: no cover - tree always connects them
        raise TransportError("no cycle found; basis is not a spanning tree")
    path_cells: list[tuple[int, int]] = []
    node = goal
    while node != start:
        node, cell = parents[node]
        path_cells.append(cell)
    # path_cells runs goal -> start; cycle order: entering, then the path from
    # the col side back to the row side, which alternates signs correctly.
    return [entering] + path_cells


def _solve_simplex(
    supply: np.ndarray, demand: np.ndarray, cost: np.ndarray
) -> TransportResult:
    n, m = cost.shape
    flow, basis = _northwest_corner(supply, demand)
    max_iter = 200 * (n + m)
    for _ in range(max_iter):
        u, v = _compute_duals(basis, cost, n, m)
        reduced = cost - u[:, None] - v[None, :]
        for (i, j) in basis:
            reduced[i, j] = 0.0
        entering_flat = int(np.argmin(reduced))
        entering = (entering_flat // m, entering_flat % m)
        if reduced[entering] >= -1e-9:
            break
        cycle = _find_cycle(basis, entering, n, m)
        minus_cells = cycle[1::2]
        theta = min(flow[c] for c in minus_cells)
        leaving = next(c for c in minus_cells if flow[c] <= theta + _TOL)
        for idx, cell in enumerate(cycle):
            delta = theta if idx % 2 == 0 else -theta
            flow[cell] = flow.get(cell, 0.0) + delta
        flow[entering] = flow.get(entering, 0.0)
        del flow[leaving]
        basis.remove(leaving)
        basis.append(entering)
    else:  # pragma: no cover - pivot cap is far above practical need
        raise TransportError(f"simplex did not converge within {max_iter} pivots")
    dense = np.zeros((n, m))
    for (i, j), f in flow.items():
        dense[i, j] = max(f, 0.0)
    return TransportResult(flow=dense, cost=float(np.sum(dense * cost)))
