"""Kolmogorov-Smirnov distance (extension).

Not named by the paper but a natural cheap alternative: the maximum over
attributes of the per-attribute two-sample KS statistic. Unlike EMD it is
insensitive to *how far* mass moved, only to how much — the ablation bench
contrasts the two on Winsorization (which moves mass a long way).

KS is a pure function of per-attribute empirical CDFs, so it is
**streaming-native** through :class:`~repro.stats.ecdf.EcdfSketch` panels
(:meth:`KolmogorovSmirnovDistance.sketch_distances`): exact-mode sketches
reproduce the pooled statistic bitwise, compressed sketches to the sketch's
rank-error bound. It is also invariant under per-attribute monotone maps,
so no standardisation frame is involved.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.distance.base import Distance
from repro.errors import DistanceError
from repro.stats.ecdf import Ecdf, EcdfSketch

__all__ = ["KolmogorovSmirnovDistance"]


class KolmogorovSmirnovDistance(Distance):
    """``max_j sup_x |F_j(x) - G_j(x)|`` over the attributes ``j``.

    The statistic is a maximum of per-attribute *marginal* comparisons, so
    NaN handling is per attribute as well: each column keeps its own finite
    values (the way the pooled per-column paths drop NaNs), an attribute
    unpopulated on either side is skipped rather than poisoning the whole
    comparison — a cleaner that blanks one column still gets scored on the
    remaining attributes — and NaNs never reach the evaluation grid.
    """

    name = "ks"
    #: Rows reach the statistic whole; each attribute filters its own NaNs.
    complete_case = False

    def __call__(self, p: np.ndarray, q: np.ndarray) -> float:
        # Per-attribute completeness instead of the base class's
        # complete-row filter: dropping a whole row because *another*
        # attribute is missing would discard marginal mass, and an
        # entirely-NaN column would empty the sample.
        p = _coerce(p, "p")
        q = _coerce(q, "q")
        if p.shape[1] != q.shape[1]:
            raise DistanceError(
                f"dimension mismatch: p has d={p.shape[1]}, q has d={q.shape[1]}"
            )
        return float(self.compute(p, q))

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        worst: Optional[float] = None
        for j in range(p.shape[1]):
            x = p[:, j]
            y = q[:, j]
            x = x[np.isfinite(x)]
            y = y[np.isfinite(y)]
            if x.size == 0 or y.size == 0:
                continue  # unpopulated on one side: no marginal to compare
            f = Ecdf(x)
            g = Ecdf(y)
            grid = np.union1d(x, y)
            gap = float(np.max(np.abs(f(grid) - g(grid))))
            worst = gap if worst is None else max(worst, gap)
        if worst is None:
            raise DistanceError("no attribute populated on both sides")
        return worst

    # -- streaming ------------------------------------------------------------

    def sketch_distances(
        self,
        reference: Sequence[EcdfSketch],
        candidates: Sequence[Sequence[EcdfSketch]],
        scale: Optional[np.ndarray] = None,
    ) -> list[float]:
        """KS of each candidate panel against the reference, from sketches.

        *reference* holds one :class:`~repro.stats.ecdf.EcdfSketch` per
        attribute; *candidates* one such panel per candidate. ``scale`` is
        accepted for protocol uniformity and ignored — KS is invariant
        under per-attribute monotone rescaling. Attributes unpopulated on
        either side are skipped exactly like :meth:`compute`.
        """
        results = []
        for panel in candidates:
            if len(panel) != len(reference):
                raise DistanceError(
                    f"candidate panel has {len(panel)} attribute sketches, "
                    f"reference has {len(reference)}"
                )
            worst: Optional[float] = None
            for ref_sketch, cand_sketch in zip(reference, panel):
                if ref_sketch.n == 0 or cand_sketch.n == 0:
                    continue
                gap = ref_sketch.ks_distance(cand_sketch)
                worst = gap if worst is None else max(worst, gap)
            if worst is None:
                raise DistanceError("no attribute populated on both sides")
            results.append(float(worst))
        return results


def _coerce(values: np.ndarray, name: str) -> np.ndarray:
    """Coerce to ``(N, d)`` float rows *without* dropping incomplete rows."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise DistanceError(f"{name} must be (N, d) or (N,), got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise DistanceError(f"{name} has no rows")
    return arr
