"""Kolmogorov-Smirnov distance (extension).

Not named by the paper but a natural cheap alternative: the maximum over
attributes of the per-attribute two-sample KS statistic. Unlike EMD it is
insensitive to *how far* mass moved, only to how much — the ablation bench
contrasts the two on Winsorization (which moves mass a long way).
"""

from __future__ import annotations

import numpy as np

from repro.distance.base import Distance
from repro.stats.ecdf import Ecdf

__all__ = ["KolmogorovSmirnovDistance"]


class KolmogorovSmirnovDistance(Distance):
    """``max_j sup_x |F_j(x) - G_j(x)|`` over the attributes ``j``."""

    name = "ks"

    def compute(self, p: np.ndarray, q: np.ndarray) -> float:
        worst = 0.0
        for j in range(p.shape[1]):
            f = Ecdf(p[:, j])
            g = Ecdf(q[:, j])
            grid = np.union1d(p[:, j], q[:, j])
            gap = float(np.max(np.abs(f(grid) - g(grid))))
            worst = max(worst, gap)
        return worst
