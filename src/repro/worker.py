"""``repro-worker`` — the remote execution endpoint of the cluster backend.

Run with ``python -m repro.worker [--host H] [--port P]``. The worker binds
a TCP socket (``--port 0`` picks an ephemeral port), announces
``repro-worker listening on host:port`` on stdout (the cluster backend's
local spawner parses that banner), and serves coordinator connections —
each in its own thread, so several sequential or concurrent maps can share
one worker.

Per connection the protocol is: worker sends ``hello``; the coordinator
sends a ``spec`` carrying the (already retry-wrapped) work callable and a
heartbeat interval; then ``task`` frames are answered with ``result`` or
``error`` frames while a background thread heartbeats liveness — including
*during* a long unit, which is what lets the coordinator tell a slow worker
from a dead one. A message that fails to unpickle (e.g. the coordinator
shipped a callable whose module this worker cannot import) is answered
with a ``reject`` frame — the framing layer has already consumed the full
payload, so the stream stays in sync and the coordinator can fail the link
fast instead of guessing.

Fault sites probed here (plans arrive via the inherited ``REPRO_FAULTS``
environment variable — per-process counters, exactly like pool workers):
``worker.lost`` hard-exits on receiving a task (an OOM-killed node);
``worker.slow`` sleeps before computing (a straggler, the speculation
target).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import pickle
import socket
import threading
import time
from typing import Callable, Optional

from repro.core.cluster import ClusterError, recv_message, send_message
from repro.errors import ReproError
from repro.testing.faults import fault_fires

__all__ = ["serve", "main"]

#: ``worker.slow`` straggler sleep — comfortably past the speculation
#: floor at test scale, comfortably under any sane lease TTL.
SLOW_SLEEP_S = 0.75


def _shippable(exc: BaseException) -> BaseException:
    """The exception itself if it survives a pickle round-trip, else a
    :class:`ClusterError` carrying its provenance string."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ClusterError(f"{type(exc).__name__}: {exc}")


def _heartbeat_loop(
    send: Callable[[dict], None], interval: float, stop: threading.Event
) -> None:
    while not stop.wait(interval):
        try:
            send({"type": "heartbeat"})
        except Exception:
            return


def _serve_connection(sock: socket.socket) -> None:
    """Drive one coordinator connection to completion."""
    with contextlib.suppress(OSError):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    stop = threading.Event()
    send_lock = threading.Lock()

    def send(message: dict) -> None:
        with send_lock:
            send_message(sock, message)

    call: Optional[Callable] = None
    heartbeat: Optional[threading.Thread] = None
    try:
        send({"type": "hello", "pid": os.getpid()})
        while True:
            try:
                message = recv_message(sock)
            except ClusterError as exc:
                if getattr(exc, "in_sync", False):
                    # Corrupt/undecodable frame whose payload was fully
                    # consumed: the stream is still framed correctly, so
                    # tell the coordinator instead of silently dying.
                    send({"type": "reject", "message": str(exc)})
                    continue
                return  # torn frame: the stream is unrecoverable
            kind = message.get("type")
            if kind == "spec":
                call = message["call"]
                interval = float(message.get("heartbeat", 2.0))
                if heartbeat is None:
                    heartbeat = threading.Thread(
                        target=_heartbeat_loop,
                        args=(send, interval, stop),
                        daemon=True,
                    )
                    heartbeat.start()
            elif kind == "task":
                if fault_fires("worker.lost"):
                    os._exit(17)
                if fault_fires("worker.slow"):
                    time.sleep(SLOW_SLEEP_S)
                unit = message["unit"]
                if call is None:
                    send(
                        {
                            "type": "reject",
                            "message": "task received before a spec",
                        }
                    )
                    continue
                try:
                    value = call(message["item"])
                except Exception as exc:
                    from repro.core.resilience import is_retryable

                    send(
                        {
                            "type": "error",
                            "unit": unit,
                            "exc": _shippable(exc),
                            "retryable": is_retryable(exc),
                        }
                    )
                else:
                    send({"type": "result", "unit": unit, "value": value})
            elif kind == "shutdown":
                return
            else:
                send({"type": "reject", "message": f"unknown message {kind!r}"})
    except (ConnectionError, OSError):
        return  # coordinator went away; the accept loop lives on
    finally:
        stop.set()
        with contextlib.suppress(OSError):
            sock.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    max_connections: Optional[int] = None,
) -> None:
    """Bind, announce ``repro-worker listening on host:port``, accept forever.

    Each connection is served in its own daemon thread. *max_connections*
    bounds the number of connections accepted (for tests); ``None`` serves
    until the process is terminated.
    """
    server = socket.create_server((host, port))
    bound_port = server.getsockname()[1]
    print(f"repro-worker listening on {host}:{bound_port}", flush=True)
    accepted = 0
    threads: list[threading.Thread] = []
    try:
        while max_connections is None or accepted < max_connections:
            conn, _ = server.accept()
            accepted += 1
            thread = threading.Thread(
                target=_serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
    finally:
        with contextlib.suppress(OSError):
            server.close()


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Remote execution endpoint for the repro cluster backend.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=None,
        help="serve this many connections, then exit (default: forever)",
    )
    args = parser.parse_args(argv)
    try:
        serve(args.host, args.port, max_connections=args.max_connections)
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    except ReproError as exc:  # pragma: no cover - startup misconfiguration
        raise SystemExit(str(exc))


if __name__ == "__main__":
    main()
