"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "TopologyError",
    "DataShapeError",
    "ConstraintError",
    "CleaningError",
    "DistanceError",
    "TransportError",
    "SamplingError",
    "ExperimentError",
    "StoreError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, wrong shape, empty, ...)."""


class TopologyError(ReproError):
    """A network-topology operation referenced an unknown or duplicate node."""


class DataShapeError(ReproError, ValueError):
    """A data container was constructed with inconsistent dimensions."""


class ConstraintError(ReproError, ValueError):
    """An inconsistency constraint is malformed or references bad attributes."""


class CleaningError(ReproError):
    """A cleaning strategy could not be applied."""


class DistanceError(ReproError):
    """A statistical distance could not be computed."""


class TransportError(DistanceError):
    """The transportation problem underlying EMD failed to solve."""


class SamplingError(ReproError, ValueError):
    """A sampling scheme received invalid parameters."""


class ExperimentError(ReproError):
    """The experimental framework was configured or driven incorrectly."""


class StoreError(ReproError):
    """A persistent-store artifact (shard file, catalog) is malformed,
    truncated, or does not match the recipe that claims it."""
