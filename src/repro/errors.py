"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "TopologyError",
    "DataShapeError",
    "ConstraintError",
    "CleaningError",
    "DistanceError",
    "TransportError",
    "SamplingError",
    "ExperimentError",
    "StoreError",
    "ClusterError",
    "UnitTimeoutError",
    "FaultInjectedError",
    "ReproWarning",
    "StoreWarning",
    "ResilienceWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, wrong shape, empty, ...)."""


class TopologyError(ReproError):
    """A network-topology operation referenced an unknown or duplicate node."""


class DataShapeError(ReproError, ValueError):
    """A data container was constructed with inconsistent dimensions."""


class ConstraintError(ReproError, ValueError):
    """An inconsistency constraint is malformed or references bad attributes."""


class CleaningError(ReproError):
    """A cleaning strategy could not be applied."""


class DistanceError(ReproError):
    """A statistical distance could not be computed."""


class TransportError(DistanceError):
    """The transportation problem underlying EMD failed to solve."""


class SamplingError(ReproError, ValueError):
    """A sampling scheme received invalid parameters."""


class ExperimentError(ReproError):
    """The experimental framework was configured or driven incorrectly."""


class StoreError(ReproError):
    """A persistent-store artifact (shard file, catalog) is malformed,
    truncated, or does not match the recipe that claims it."""


class ClusterError(ReproError):
    """A cluster protocol message was torn, corrupt, or out of contract.

    Raised by the framing layer when a frame fails its checksum or magic
    check, and by the coordinator when a worker breaks protocol. Always
    scoped to one connection: the coordinator re-dispatches the affected
    units elsewhere rather than aborting the map.
    """


class UnitTimeoutError(ReproError):
    """A work unit exceeded the policy's ``unit_timeout`` watchdog.

    Deliberately *retryable* (unlike other :class:`ReproError` subclasses —
    see :func:`~repro.core.resilience.is_retryable`): a wedged unit is an
    environmental transient, and re-running a pure unit is always safe.
    """


class FaultInjectedError(ReproError):
    """A deterministic test fault fired (see :mod:`repro.testing.faults`).

    Always transient by construction: the fault registry counts hits per
    site, so a retry of the same work unit proceeds past the site once the
    planned number of failures has been consumed.
    """


class ReproWarning(UserWarning):
    """Base category for all warnings emitted by the ``repro`` library."""


class StoreWarning(ReproWarning):
    """A persistent-store operation degraded gracefully (spill skipped,
    stale slab regenerated, catalog quarantined) instead of failing."""


class ResilienceWarning(ReproWarning):
    """The execution layer recovered from a failure (pool rebuilt, backend
    degraded, sweep cell recorded as failed) instead of aborting the run."""
