"""The cost axis: how much of the data is worth cleaning? (Figure 7)

Ranks series by normalised glitch score, cleans only the top x%, and traces
the improvement/distortion path as the budget grows — reproducing the
paper's finding that the marginal value of cleaning collapses past ~50%.

Run:  python examples/cost_sweep.py
"""

from repro import build_population, experiment_config, render_cost_summary
from repro.cleaning.registry import strategy_by_name
from repro.core.cost import cost_sweep
from repro.core.framework import ExperimentRunner


def main() -> None:
    bundle = build_population(scale="small", seed=3)
    config = experiment_config("small", log_transform=True)
    runner = ExperimentRunner(bundle.dirty, bundle.ideal, config=config)

    # A finer sweep than the paper's four points.
    fractions = (0.0, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0)
    sweep = cost_sweep(runner, strategy_by_name("strategy1"), fractions)

    print(render_cost_summary(sweep, title="Cost sweep of Strategy 1"))

    print("\nmarginal value of each budget increment:")
    print(f"{'up to':>7} {'d_improvement':>14} {'d_EMD':>8} {'improvement per unit':>22}")
    prev_f = 0.0
    for f, di, dd in sweep.marginal_gains():
        width = f - prev_f
        print(f"{f:>6.0%} {di:>14.3f} {dd:>8.3f} {di / width:>22.2f}")
        prev_f = f

    ordered = sorted(sweep.summaries(), key=lambda s: s.cost_fraction)
    per_unit_first = ordered[1].improvement_mean / ordered[1].cost_fraction
    per_unit_last = (
        (ordered[-1].improvement_mean - ordered[-2].improvement_mean)
        / (ordered[-1].cost_fraction - ordered[-2].cost_fraction)
    )
    print(
        f"\nfirst budget slice buys {per_unit_first:.1f} improvement per unit; "
        f"the last slice only {per_unit_last:.1f} — "
        "diminishing returns, as in the paper's Figure 7."
    )


if __name__ == "__main__":
    main()
