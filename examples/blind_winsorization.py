"""Figure 1 re-enacted: blind Winsorization on a bimodal distribution.

The paper opens with a schematic: a 3-sigma rule designed for a symmetric
unimodal distribution is applied to data with a legitimate low-density second
mode. The rule (1) flags legitimate extreme values (errors of commission),
(2) misses the suspicious in-between values (errors of omission), and
(3) piles clipped mass right next to the suspicious region, making the data
distributionally *dirtier*. This script makes those three effects numeric.

Run:  python examples/blind_winsorization.py
"""

import numpy as np

from repro.distance.emd import emd_1d
from repro.stats.descriptive import sigma_limits, winsorize_array


def main() -> None:
    rng = np.random.default_rng(0)

    # The real process: a main mode plus a legitimate high-activity mode.
    main_mode = rng.normal(0.0, 1.0, 9_000)
    high_mode = rng.normal(7.0, 0.6, 800)
    # Suspicious values in the low-density valley (e.g. data-entry errors).
    suspicious = rng.uniform(3.5, 5.0, 200)
    data = np.concatenate([main_mode, high_mode, suspicious])

    # The blind rule: 3-sigma limits assuming one symmetric mode.
    lo, hi = sigma_limits(data, k=3.0)
    print(f"blind 3-sigma limits: [{lo:.2f}, {hi:.2f}]")

    cleaned, changed = winsorize_array(data, lo, hi)

    is_high_mode = np.zeros(data.size, bool)
    is_high_mode[9_000:9_800] = True
    is_suspicious = np.zeros(data.size, bool)
    is_suspicious[9_800:] = True

    commission = int((changed & is_high_mode).sum())
    omission = int((~changed & is_suspicious).sum())
    print(
        f"errors of commission: {commission}/{is_high_mode.sum()} legitimate "
        "high-mode values were altered"
    )
    print(
        f"errors of omission:   {omission}/{is_suspicious.sum()} suspicious "
        "valley values were untouched"
    )

    # Where did the clipped mass land? Right at the edge of the valley.
    landed = cleaned[changed & is_high_mode]
    if landed.size:
        print(
            f"clipped legitimate values now sit at {landed.min():.2f}"
            f"..{landed.max():.2f} — adjacent to the suspicious region "
            f"({3.5:.1f}..{5.0:.1f})"
        )

    distortion = emd_1d(data, cleaned)
    print(f"\nstatistical distortion of the blind repair (1-D EMD): {distortion:.3f}")
    target_only = np.where(is_suspicious, np.nan, data)
    ideal_fix = np.where(
        is_suspicious, np.nanmedian(target_only), data
    )
    print(
        f"distortion of repairing only the suspicious values:      "
        f"{emd_1d(data, ideal_fix):.3f}"
    )
    print(
        "\nthe blind rule distorts the data far more than a targeted repair —"
        "\nwhile also *adding* glitches. Cleaner is not the same as better."
    )


if __name__ == "__main__":
    main()
