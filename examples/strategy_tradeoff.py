"""Comparing cleaning strategies — including your own.

Shows how to define a custom strategy (a composite of building blocks plus a
fully custom class), evaluate it against the paper's five, and read the
three-dimensional verdict.

Run:  python examples/strategy_tradeoff.py
"""

import numpy as np

from repro import (
    CleaningContext,
    CleaningStrategy,
    CompositeStrategy,
    InterpolationImputation,
    StreamDataset,
    WinsorizeOutliers,
    build_population,
    experiment_config,
    paper_strategies,
    render_strategy_summaries,
    viable_strategies,
)
from repro.core.framework import ExperimentRunner


class ClampRatioStrategy(CleaningStrategy):
    """A domain-specific rule: clamp Attribute 3 into [0, 1] and drop
    nothing else. Cheap, targeted, and constraint-aware — the kind of
    strategy the framework is meant to evaluate against generic ones."""

    name = "clamp-ratio"

    def clean(self, sample: StreamDataset, context: CleaningContext) -> StreamDataset:
        def treat(series):
            values = series.values.copy()
            j = series.attribute_index("attr3")
            with np.errstate(invalid="ignore"):
                values[:, j] = np.clip(values[:, j], 0.0, 1.0)
            return series.with_values(values)

        return sample.map(treat)


def main() -> None:
    bundle = build_population(scale="small", seed=2)
    config = experiment_config("small", log_transform=True)

    strategies = paper_strategies() + [
        # Composite from building blocks: structure-aware imputation plus
        # the paper's outlier repair.
        CompositeStrategy(
            "interp+winsorize",
            mi_treatment=InterpolationImputation(),
            outlier_treatment=WinsorizeOutliers(),
        ),
        ClampRatioStrategy(),
    ]

    # backend=None defers to REPRO_BACKEND (e.g. "process:4" to fan the
    # replications out over four workers — the numbers do not change).
    runner = ExperimentRunner(bundle.dirty, bundle.ideal, config=config)
    result = runner.run(strategies)

    print(render_strategy_summaries(
        result.summaries(), title="Paper strategies vs custom strategies"
    ))

    # A user with a distortion budget: which strategies remain?
    budget = 0.35
    survivors = viable_strategies(result.summaries(), max_distortion=budget)
    print(f"\nviable strategies with distortion <= {budget}:")
    for p in survivors:
        print(
            f"  {p.strategy:<18} improvement={p.improvement:6.2f} "
            f"distortion={p.distortion:.3f}"
        )


if __name__ == "__main__":
    main()
