"""Network-monitoring walkthrough: detection, scoring and glitch analytics.

The scenario the paper's introduction motivates: a stream of per-antenna
measurements arrives with missing values, constraint violations and
anomalies. This example goes through the detection substrate step by step —
constraints, 3-sigma limits, glitch bit matrices, the weighted glitch index,
co-occurrence patterns and the Figure 3 count series.

Run:  python examples/network_monitoring.py
"""

import numpy as np

from repro import GlitchType, build_population
from repro.core.glitch_index import GlitchWeights, series_glitch_scores
from repro.glitches.detectors import DetectorSuite, ScaleTransform
from repro.glitches.outliers import WindowedOutlierDetector
from repro.glitches.patterns import (
    cooccurrence_matrix,
    counts_over_time,
    jaccard_overlap,
    pattern_frequencies,
    temporal_autocorrelation,
)


def main() -> None:
    bundle = build_population(scale="small", seed=1)
    dirty = bundle.dirty
    suite = bundle.suite

    # -- the rules and limits in play -------------------------------------
    print("inconsistency constraints (Section 4.1):")
    for rule in suite.constraints.describe():
        print(f"  - {rule}")
    print("\n3-sigma limits fitted on the ideal data:")
    for attr, (lo, hi) in suite.outlier_detector.limits.items():
        print(f"  {attr}: [{lo:.3f}, {hi:.3f}]")

    # -- annotate and score -------------------------------------------------
    glitches = suite.annotate_dataset(dirty)
    fractions = glitches.record_fractions()
    print("\nrecord-level glitch rates of the dirty population:")
    for g in GlitchType:
        print(f"  {g.label:<13} {fractions[g]:6.1%}")

    scores = series_glitch_scores(glitches, GlitchWeights())
    worst = np.argsort(-scores)[:5]
    print("\nfive dirtiest series by normalised weighted glitch score:")
    for i in worst:
        print(f"  {dirty[int(i)].node}  score={scores[i]:.3f}")

    # -- co-occurrence structure (Figure 3's observation) --------------------
    print("\nrecord-level co-occurrence counts (m x m):")
    print(cooccurrence_matrix(glitches))
    overlap = jaccard_overlap(glitches, GlitchType.MISSING, GlitchType.INCONSISTENT)
    print(f"missing/inconsistent Jaccard overlap: {overlap:.2f}")
    patterns = pattern_frequencies(glitches)
    top = sorted(patterns.items(), key=lambda kv: -kv[1])[:4]
    print("most frequent record-level patterns (missing, inconsistent, outlier):")
    for bits, count in top:
        print(f"  {bits}: {count}")

    # -- temporal structure ----------------------------------------------------
    acf = temporal_autocorrelation(glitches, GlitchType.MISSING, max_lag=5)
    print(f"\nmissing-indicator autocorrelation, lags 1-5: {np.round(acf, 3)}")
    counts = counts_over_time(glitches)
    print(f"peak simultaneous missing records: {counts[:, 0].max()} "
          f"(median {int(np.median(counts[:, 0]))}) — network-wide events")

    # -- alternative detectors ---------------------------------------------------
    series = dirty[int(worst[0])]
    windowed = WindowedOutlierDetector(window=24, k=3.0)
    flagged = windowed.detect(series)
    baseline = suite.annotate(series).plane(GlitchType.OUTLIER)
    print(
        f"\nwindowed self-history detector on {series.node}: "
        f"{flagged.sum()} cells vs {baseline.sum()} for the ideal-limit rule"
    )

    # -- the log-scale factor ------------------------------------------------------
    log_suite = DetectorSuite.from_ideal(
        bundle.ideal, transform=ScaleTransform.log_attr1()
    )
    log_rate = log_suite.annotate_dataset(dirty).record_fraction(GlitchType.OUTLIER)
    print(
        f"\noutlier rate raw scale {fractions[GlitchType.OUTLIER]:.1%} vs "
        f"log scale {log_rate:.1%} — the Table 1 asymmetry"
    )


if __name__ == "__main__":
    main()
