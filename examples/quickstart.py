"""Quickstart: evaluate cleaning strategies on the three-dimensional metric.

Builds a synthetic network-monitoring population, partitions it into dirty
and ideal parts by the paper's < 5% rule, runs the five cleaning strategies
over replicated samples, and prints glitch improvement vs statistical
distortion per strategy — one panel of the paper's Figure 6.

Run:  python examples/quickstart.py
      REPRO_BACKEND=process:4 python examples/quickstart.py   # parallel, same numbers
"""

from repro import (
    backend_from_env,
    build_population,
    experiment_config,
    knee_point,
    pareto_front,
    render_strategy_summaries,
    run_figure6,
)


def main() -> None:
    # 0. Resolve the execution backend up front: a typo'd REPRO_BACKEND
    #    should fail here, not after the population build.
    backend = backend_from_env(default="serial")
    print(f"execution backend: {backend}")

    # 1. A generated population standing in for the AT&T feed: the bundle
    #    holds the dirty part D, the ideal part DI and a fitted detector
    #    suite (3-sigma limits from the ideal data).
    bundle = build_population(scale="small", seed=0)
    print(
        f"population: {len(bundle.population)} series, "
        f"{len(bundle.dirty)} dirty / {len(bundle.ideal)} ideal "
        f"({bundle.partition.ideal_fraction:.0%} met the <5% rule)"
    )

    # 2. Evaluate the paper's five strategies: R replications of B series,
    #    with the log(attr1) analysis scale of Figure 6(a). Replications fan
    #    out across the execution backend named by REPRO_BACKEND (serial,
    #    thread, process[:N]) with identical results on every choice.
    config = experiment_config("small", log_transform=True)
    result = run_figure6(bundle, config)

    # 3. Improvement vs distortion per strategy.
    print()
    print(render_strategy_summaries(result.summaries(), title="Figure 6(a) summary"))

    # 4. Which strategies are viable, and where is the knee?
    front = pareto_front(result.summaries())
    knee = knee_point(result.summaries())
    print()
    print("Pareto-viable strategies:", ", ".join(p.strategy for p in front))
    print(
        f"knee of the trade-off: {knee.strategy} "
        f"(improvement {knee.improvement:.2f}, distortion {knee.distortion:.3f})"
    )


if __name__ == "__main__":
    main()
