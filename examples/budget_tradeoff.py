"""Figure 2 re-enacted: three strategies under one budget.

The paper's budget story: for a fixed spend $K a user can (a) mean-impute
100% of the glitches (cheap, fully "clean", heavily distorted), (b) simulate
the distribution for ~40% of them (moderate), or (c) re-measure ~30% of them
exactly (expensive per glitch, nearly undistorted). The right choice depends
on whether the mandate is "no missing values" or "keep the distribution".

Run:  python examples/budget_tradeoff.py
"""

from repro import (
    CompositeStrategy,
    MeanImputation,
    MvnImputation,
    RemeasureStrategy,
    build_population,
    experiment_config,
    render_strategy_summaries,
)
from repro.cleaning.partial import PartialCleaner
from repro.core.framework import ExperimentRunner


def main() -> None:
    bundle = build_population(scale="small", seed=4)
    config = experiment_config("small", log_transform=True)

    # One budget, three ways to spend it. Coverages mirror Figure 2:
    # cheap covers 100%, model-based 40%, re-measurement 30%.
    cheap = PartialCleaner(
        CompositeStrategy("mean-impute", mi_treatment=MeanImputation()),
        fraction=1.0,
    )
    cheap.name = "cheap: mean @100%"
    medium = PartialCleaner(
        CompositeStrategy("mvn-impute", mi_treatment=MvnImputation()),
        fraction=0.4,
    )
    medium.name = "medium: simulate @40%"
    expensive = PartialCleaner(RemeasureStrategy(coverage=1.0), fraction=0.3)
    expensive.name = "expensive: re-measure @30%"

    runner = ExperimentRunner(bundle.dirty, bundle.ideal, config=config)
    result = runner.run([cheap, medium, expensive])

    print(render_strategy_summaries(
        result.summaries(), title="Figure 2's budget trade-off, measured"
    ))

    s = {x.strategy: x for x in result.summaries()}
    cheap_s = s["cheap: mean @100%"]
    medium_s = s["medium: simulate @40%"]
    oracle_s = s["expensive: re-measure @30%"]
    print(
        "\nthe cheap strategy removes the most weighted glitches "
        f"({cheap_s.improvement_mean:.2f}, all of them are treated) at "
        f"distortion {cheap_s.distortion_mean:.3f};"
    )
    print(
        "the model-based option covers only 40% yet distorts "
        f"{medium_s.distortion_mean:.3f} — the paper's surprise finding that "
        "a sophisticated method with wrong assumptions loses to a simple one;"
    )
    print(
        "re-measurement cleans least "
        f"({oracle_s.improvement_mean:.2f}) at almost no distortion "
        f"({oracle_s.distortion_mean:.3f})."
    )
    print(
        "\na 'no missing values' mandate forces the cheap strategy; a "
        "'represent the process' mandate forces the expensive one —\n"
        "exactly the paper's point: the metric cannot choose for you, but it "
        "shows you the price."
    )


if __name__ == "__main__":
    main()
